/**
 * @file
 * Unit and property tests for the bit-interleaving map.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "sram/interleave.hh"

namespace
{

using c8t::sram::InterleaveMap;

TEST(InterleaveMap, NonInterleavedIsIdentityLayout)
{
    InterleaveMap map(4, 8, 1);
    for (std::uint32_t w = 0; w < 4; ++w)
        for (std::uint32_t b = 0; b < 8; ++b)
            EXPECT_EQ(map.toPhysical(w, b), w * 8 + b);
}

TEST(InterleaveMap, AdjacentColumnsBelongToDifferentWords)
{
    InterleaveMap map(8, 64, 4);
    for (std::uint32_t col = 0; col + 1 < map.columns(); ++col) {
        // Within an interleave group, neighbours differ in word.
        const bool same_group =
            col / (64 * 4) == (col + 1) / (64 * 4);
        if (same_group) {
            EXPECT_NE(map.wordOf(col), map.wordOf(col + 1))
                << "col " << col;
        }
    }
}

TEST(InterleaveMap, BurstOfDegreeHitsDistinctWords)
{
    // The motivating property: any burst of up to `degree` adjacent
    // columns lands in `degree` distinct words.
    InterleaveMap map(8, 64, 4);
    for (std::uint32_t start = 0; start + 4 <= map.columns(); ++start) {
        std::set<std::uint32_t> words;
        for (std::uint32_t i = 0; i < 4; ++i)
            words.insert(map.wordOf(start + i));
        EXPECT_EQ(words.size(), 4u) << "burst at " << start;
    }
}

TEST(InterleaveMap, ColumnsCount)
{
    InterleaveMap map(16, 72, 4);
    EXPECT_EQ(map.columns(), 16u * 72u);
}

/** Property suite over several geometries. */
class InterleaveProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
{};

TEST_P(InterleaveProperty, MappingIsBijective)
{
    const auto [words, bits, degree] = GetParam();
    InterleaveMap map(words, bits, degree);

    std::set<std::uint32_t> used;
    for (std::uint32_t w = 0; w < words; ++w) {
        for (std::uint32_t b = 0; b < bits; ++b) {
            const std::uint32_t col = map.toPhysical(w, b);
            EXPECT_LT(col, map.columns());
            EXPECT_TRUE(used.insert(col).second)
                << "collision at (" << w << ", " << b << ")";
        }
    }
    EXPECT_EQ(used.size(), map.columns());
}

TEST_P(InterleaveProperty, InverseRoundTrips)
{
    const auto [words, bits, degree] = GetParam();
    InterleaveMap map(words, bits, degree);

    for (std::uint32_t col = 0; col < map.columns(); ++col) {
        const std::uint32_t w = map.wordOf(col);
        const std::uint32_t b = map.bitOf(col);
        EXPECT_LT(w, words);
        EXPECT_LT(b, bits);
        EXPECT_EQ(map.toPhysical(w, b), col);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, InterleaveProperty,
    ::testing::Values(std::make_tuple(4u, 8u, 1u),
                      std::make_tuple(4u, 8u, 2u),
                      std::make_tuple(4u, 8u, 4u),
                      std::make_tuple(16u, 64u, 4u),
                      std::make_tuple(16u, 64u, 8u),
                      std::make_tuple(16u, 72u, 4u),
                      std::make_tuple(8u, 72u, 8u),
                      std::make_tuple(32u, 64u, 16u)));

} // anonymous namespace
