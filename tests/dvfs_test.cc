/**
 * @file
 * Unit tests for the DVFS governor and its cache-limited voltage
 * floor.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cpu/dvfs.hh"
#include "sram/cell.hh"

namespace
{

using namespace c8t::cpu;

TEST(Dvfs, DefaultTableIsSane)
{
    const auto levels = defaultDvfsLevels();
    EXPECT_GE(levels.size(), 5u);
    for (const auto &l : levels) {
        EXPECT_GT(l.vdd, 0.4);
        EXPECT_LE(l.vdd, 1.1);
        EXPECT_GT(l.freqGhz, 0.0);
    }
}

TEST(Dvfs, FloorFiltersLevels)
{
    DvfsGovernor g(defaultDvfsLevels(), 0.75);
    for (const auto &l : g.usableLevels())
        EXPECT_GE(l.vdd, 0.75);
    EXPECT_GT(g.lockedOutLevels(), 0u);
    EXPECT_EQ(g.usableLevels().size() + g.lockedOutLevels(),
              defaultDvfsLevels().size());
}

TEST(Dvfs, ZeroFloorKeepsEverything)
{
    DvfsGovernor g(defaultDvfsLevels(), 0.0);
    EXPECT_EQ(g.lockedOutLevels(), 0u);
}

TEST(Dvfs, ImpossibleFloorThrows)
{
    EXPECT_THROW(DvfsGovernor(defaultDvfsLevels(), 2.0),
                 std::invalid_argument);
}

TEST(Dvfs, LevelsSortedFastestFirst)
{
    DvfsGovernor g(defaultDvfsLevels(), 0.0);
    const auto &levels = g.usableLevels();
    for (std::size_t i = 1; i < levels.size(); ++i)
        EXPECT_GE(levels[i - 1].vdd, levels[i].vdd);
    EXPECT_GE(g.fastest().freqGhz, g.slowest().freqGhz);
}

TEST(Dvfs, LevelForPicksLowestSufficientVoltage)
{
    DvfsGovernor g(defaultDvfsLevels(), 0.0);
    // Full demand needs the fastest level.
    EXPECT_DOUBLE_EQ(g.levelFor(1.0).vdd, g.fastest().vdd);
    // Zero demand drops to the floor.
    EXPECT_DOUBLE_EQ(g.levelFor(0.0).vdd, g.slowest().vdd);
    // Half demand: some middle level, monotone in demand.
    double prev = 0.0;
    for (double d = 0.0; d <= 1.0; d += 0.1) {
        const double v = g.levelFor(d).vdd;
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Dvfs, LevelForMeetsTheDemand)
{
    DvfsGovernor g(defaultDvfsLevels(), 0.0);
    const double fmax = g.fastest().freqGhz;
    for (double d = 0.05; d <= 1.0; d += 0.05)
        EXPECT_GE(g.levelFor(d).freqGhz, d * fmax - 1e-12);
}

TEST(Dvfs, HigherFloorRaisesIdleEnergy)
{
    // The punchline: a 6T-limited cache cannot reach the low levels a
    // low-demand phase would otherwise use.
    const double vmin6 =
        c8t::sram::vmin(c8t::sram::CellType::SixT, 1e-6);
    const double vmin8 =
        c8t::sram::vmin(c8t::sram::CellType::EightT, 1e-6);
    ASSERT_LT(vmin8, vmin6);

    DvfsGovernor g6(defaultDvfsLevels(), vmin6);
    DvfsGovernor g8(defaultDvfsLevels(), vmin8);
    EXPECT_GE(g6.lockedOutLevels(), g8.lockedOutLevels());
    EXPECT_LE(g8.slowest().vdd, g6.slowest().vdd);

    const double idle6 =
        DvfsGovernor::scaleEnergy(1.0, 1.0, g6.levelFor(0.1));
    const double idle8 =
        DvfsGovernor::scaleEnergy(1.0, 1.0, g8.levelFor(0.1));
    EXPECT_LE(idle8, idle6);
}

TEST(Dvfs, EnergyScalesQuadratically)
{
    const DvfsLevel half{0.5, 1.0};
    EXPECT_DOUBLE_EQ(DvfsGovernor::scaleEnergy(4.0, 1.0, half), 1.0);
    const DvfsLevel same{1.0, 2.0};
    EXPECT_DOUBLE_EQ(DvfsGovernor::scaleEnergy(4.0, 1.0, same), 4.0);
}

} // anonymous namespace
