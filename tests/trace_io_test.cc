/**
 * @file
 * Unit tests for trace I/O: binary round trips, truncation detection,
 * text format parsing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/kernels.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace c8t::trace;

class TraceIoTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _path = std::filesystem::temp_directory_path() /
                ("c8t_trace_test_" +
                 std::to_string(::getpid()) + ".trc");
    }

    void TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(_path, ec);
    }

    std::string path() const { return _path.string(); }

  private:
    std::filesystem::path _path;
};

std::vector<MemAccess>
sampleTrace()
{
    std::vector<MemAccess> t;
    MemAccess a;
    a.addr = 0x1000;
    a.gap = 3;
    a.size = 8;
    t.push_back(a);

    a.addr = 0x2020;
    a.type = AccessType::Write;
    a.data = 0xdeadbeefcafef00dull;
    a.gap = 0;
    a.size = 4;
    t.push_back(a);

    a.addr = 0xffffffffff8ull;
    a.type = AccessType::Read;
    a.data = 0; // reads carry no payload
    a.gap = 1000;
    a.size = 8;
    t.push_back(a);
    return t;
}

TEST_F(TraceIoTest, BinaryRoundTrip)
{
    const auto original = sampleTrace();
    {
        TraceWriter w(path());
        for (const auto &a : original)
            w.write(a);
        w.finish();
        EXPECT_EQ(w.count(), original.size());
    }

    TraceReader r(path());
    EXPECT_EQ(r.count(), original.size());
    MemAccess a;
    for (const auto &expect : original) {
        ASSERT_TRUE(r.next(a));
        EXPECT_EQ(a, expect);
    }
    EXPECT_FALSE(r.next(a));
}

TEST_F(TraceIoTest, ReaderResetReplays)
{
    {
        TraceWriter w(path());
        for (const auto &a : sampleTrace())
            w.write(a);
        w.finish();
    }
    TraceReader r(path());
    MemAccess first, again;
    ASSERT_TRUE(r.next(first));
    r.reset();
    ASSERT_TRUE(r.next(again));
    EXPECT_EQ(first, again);
}

TEST_F(TraceIoTest, UnfinishedTraceRejected)
{
    {
        TraceWriter w(path());
        w.write(MemAccess{});
        // no finish(): header count stays zero
    }
    EXPECT_THROW(TraceReader{path()}, std::runtime_error);
}

TEST_F(TraceIoTest, MissingFileRejected)
{
    EXPECT_THROW(TraceReader{"/nonexistent/path/x.trc"},
                 std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicRejected)
{
    {
        std::ofstream f(path(), std::ios::binary);
        f << "NOTATRACE_AND_SOME_PADDING_BYTES";
    }
    EXPECT_THROW(TraceReader{path()}, std::runtime_error);
}

TEST_F(TraceIoTest, FinishIsIdempotent)
{
    TraceWriter w(path());
    w.write(MemAccess{});
    w.finish();
    w.finish();
    TraceReader r(path());
    EXPECT_EQ(r.count(), 1u);
}

TEST_F(TraceIoTest, ReaderIsAnAccessGenerator)
{
    {
        TraceWriter w(path());
        for (const auto &a : sampleTrace())
            w.write(a);
        w.finish();
    }
    TraceReader r(path());
    AccessGenerator &gen = r;
    const auto collected = collect(gen, 100);
    EXPECT_EQ(collected.size(), 3u);
    EXPECT_NE(gen.name().find("trace:"), std::string::npos);
}

TEST_F(TraceIoTest, KernelTraceRoundTrip)
{
    // Write a real kernel's stream and read it back identically.
    StreamCopyKernel kernel(64, 2);
    const auto original = collect(kernel, 1000);
    {
        TraceWriter w(path());
        for (const auto &a : original)
            w.write(a);
        w.finish();
    }
    TraceReader r(path());
    const auto replayed = collect(r, 1000);
    EXPECT_EQ(replayed, original);
}

TEST(TextTrace, RoundTrip)
{
    const auto original = sampleTrace();
    std::stringstream ss;
    writeTextTrace(ss, original);
    const auto parsed = readTextTrace(ss);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i)
        EXPECT_EQ(parsed[i], original[i]);
}

TEST(TextTrace, SkipsEmptyLines)
{
    std::stringstream ss("R 0x10 sz=8 gap=0\n\nR 0x20 sz=8 gap=1\n");
    const auto parsed = readTextTrace(ss);
    EXPECT_EQ(parsed.size(), 2u);
}

TEST(TextTrace, RejectsMalformedType)
{
    std::stringstream ss("X 0x10 sz=8 gap=0\n");
    EXPECT_THROW(readTextTrace(ss), std::runtime_error);
}

TEST(TextTrace, RejectsBadAddress)
{
    std::stringstream ss("R 16 sz=8 gap=0\n");
    EXPECT_THROW(readTextTrace(ss), std::runtime_error);
}

TEST(Collect, RespectsLimit)
{
    StreamCopyKernel kernel(1000, 1);
    const auto v = collect(kernel, 10);
    EXPECT_EQ(v.size(), 10u);
}

} // anonymous namespace
