/**
 * @file
 * Tests for the multi-bit-upset campaign: interleaving + SEC-DED must
 * recover every burst up to the interleave degree; non-interleaved
 * rows must not.
 */

#include <gtest/gtest.h>

#include <set>

#include "sram/fault_injection.hh"

namespace
{

using namespace c8t::sram;

TEST(EccProtectedRow, CleanReadsRoundTrip)
{
    EccProtectedRow row(8, 4);
    for (std::uint32_t w = 0; w < 8; ++w)
        row.writeWord(w, 0x1111111111111111ull * (w + 1));
    for (std::uint32_t w = 0; w < 8; ++w) {
        const auto r = row.readWord(w);
        EXPECT_EQ(r.status, EccStatus::Ok);
        EXPECT_EQ(r.data, 0x1111111111111111ull * (w + 1));
    }
}

TEST(EccProtectedRow, SingleStrikeCorrected)
{
    EccProtectedRow row(8, 4);
    row.writeWord(3, 0xdeadbeefull);
    row.strike(100);
    const std::uint32_t hit_word = row.wordOfColumn(100);
    const auto r = row.readWord(hit_word);
    EXPECT_EQ(r.status, EccStatus::Corrected);
}

TEST(EccProtectedRow, BurstWithinDegreeLandsInDistinctWords)
{
    EccProtectedRow row(8, 4);
    for (std::uint32_t start = 0; start + 4 <= row.columns();
         start += 97) {
        std::set<std::uint32_t> words;
        for (std::uint32_t i = 0; i < 4; ++i)
            words.insert(row.wordOfColumn(start + i));
        EXPECT_EQ(words.size(), 4u);
    }
}

TEST(UpsetCampaign, InterleavedDoubleBurstAlwaysRecovers)
{
    // Degree 4 vs burst length 2: every word absorbs at most one bit,
    // SEC-DED corrects everything, zero silent corruption.
    UpsetCampaign cfg;
    cfg.words = 16;
    cfg.degree = 4;
    cfg.burstLength = 2;
    cfg.trials = 2000;
    const UpsetStats s = runUpsetCampaign(cfg);
    EXPECT_EQ(s.trials, 2000u);
    EXPECT_EQ(s.multiBitWords, 0u);
    EXPECT_EQ(s.silentCorruptions, 0u);
    EXPECT_EQ(s.detectedUncorrectable, 0u);
    EXPECT_EQ(s.fullyRecoveredTrials, 2000u);
    EXPECT_EQ(s.corrected, 2u * 2000u);
}

TEST(UpsetCampaign, NonInterleavedDoubleBurstDefeatsSecDed)
{
    UpsetCampaign cfg;
    cfg.words = 16;
    cfg.degree = 1;
    cfg.burstLength = 2;
    cfg.trials = 2000;
    const UpsetStats s = runUpsetCampaign(cfg);
    // Almost every burst lands both bits in one word.
    EXPECT_GT(s.multiBitWords, 1800u);
    EXPECT_GT(s.detectedUncorrectable, 1800u);
    EXPECT_LT(s.fullyRecoveredTrials, 200u);
}

TEST(UpsetCampaign, InterleavedFourBurstStillRecovers)
{
    UpsetCampaign cfg;
    cfg.words = 16;
    cfg.degree = 4;
    cfg.burstLength = 4;
    cfg.trials = 1000;
    const UpsetStats s = runUpsetCampaign(cfg);
    EXPECT_EQ(s.multiBitWords, 0u);
    EXPECT_EQ(s.fullyRecoveredTrials, 1000u);
}

TEST(UpsetCampaign, BurstBeyondDegreeBreaksInterleaving)
{
    // Burst longer than the degree must place two bits in some word.
    UpsetCampaign cfg;
    cfg.words = 16;
    cfg.degree = 4;
    cfg.burstLength = 5;
    cfg.trials = 500;
    const UpsetStats s = runUpsetCampaign(cfg);
    // A burst fully inside one interleave group must double-hit a word;
    // the rare bursts straddling a group boundary can escape.
    EXPECT_GT(s.multiBitWords, 480u);
    EXPECT_GT(s.detectedUncorrectable, 400u);
}

TEST(UpsetCampaign, DeterministicGivenSeed)
{
    UpsetCampaign cfg;
    cfg.trials = 200;
    cfg.degree = 1;
    const UpsetStats a = runUpsetCampaign(cfg);
    const UpsetStats b = runUpsetCampaign(cfg);
    EXPECT_EQ(a.corrected, b.corrected);
    EXPECT_EQ(a.detectedUncorrectable, b.detectedUncorrectable);
    EXPECT_EQ(a.fullyRecoveredTrials, b.fullyRecoveredTrials);
}

TEST(UpsetCampaign, SingleBitBurstAlwaysCorrectedAnyDegree)
{
    for (std::uint32_t degree : {1u, 2u, 4u, 8u}) {
        UpsetCampaign cfg;
        cfg.words = 8;
        cfg.degree = degree;
        cfg.burstLength = 1;
        cfg.trials = 500;
        const UpsetStats s = runUpsetCampaign(cfg);
        EXPECT_EQ(s.fullyRecoveredTrials, 500u) << "degree " << degree;
        EXPECT_EQ(s.silentCorruptions, 0u);
    }
}

} // anonymous namespace
