/**
 * @file
 * c8td daemon tests (DESIGN.md §13): golden byte-identity against the
 * shared job path, cross-request memoization, protocol robustness
 * (truncated frames, oversized prefixes, bad specs), mid-job client
 * disconnect, concurrent clients and the SIGTERM-style drain.
 *
 * The daemon runs in-process (serve() on a thread, stop() to end it);
 * the CI daemon stage covers the real c8td/c8tctl binaries and the
 * actual SIGTERM path.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "app/job_runner.hh"
#include "core/job_spec.hh"
#include "net/client.hh"
#include "net/daemon.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"

namespace
{

using namespace c8t;
using namespace std::chrono_literals;

/** A short, deterministic run spec (same stream every time). */
const char kRunSpec[] =
    "{\"kind\":\"run\",\"workload\":\"spec:gcc\",\"accesses\":50000}";

std::string
uniqueSocketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/c8t_daemon_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** serve() on a thread; joins (after stop()) on destruction. */
class DaemonFixture
{
  public:
    explicit DaemonFixture(net::DaemonConfig cfg = {})
    {
        if (cfg.socketPath.empty())
            cfg.socketPath = uniqueSocketPath();
        _daemon = std::make_unique<net::Daemon>(cfg);
        _thread = std::thread([this] { _daemon->serve(); });
        const auto deadline =
            std::chrono::steady_clock::now() + 10s;
        while (!_daemon->ready()) {
            if (std::chrono::steady_clock::now() >= deadline) {
                ADD_FAILURE() << "daemon did not come up";
                break;
            }
            std::this_thread::sleep_for(1ms);
        }
    }

    ~DaemonFixture()
    {
        _daemon->stop();
        _thread.join();
        std::remove(_daemon->config().socketPath.c_str());
    }

    net::Daemon &daemon() { return *_daemon; }
    const std::string &socket() const
    {
        return _daemon->config().socketPath;
    }

  private:
    std::unique_ptr<net::Daemon> _daemon;
    std::thread _thread;
};

/** Poll a metrics predicate until true or a 30 s deadline. */
template <typename Fn>
bool
eventually(Fn &&pred)
{
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(5ms);
    }
    return false;
}

TEST(DaemonTest, FinalFrameIsByteIdenticalToJobRunner)
{
    // The expected document comes from the same shared path c8tsim
    // uses; the CI daemon stage additionally diffs against the real
    // c8tsim binary's --stats-json file.
    const std::string expected =
        app::runJobSpec(core::JobSpec::fromJsonText(kRunSpec))
            .document;

    DaemonFixture fx;
    net::DaemonClient client(fx.socket());
    EXPECT_EQ(client.call(kRunSpec), expected);
}

TEST(DaemonTest, VddSweepAndExploreKindsMatchJobRunner)
{
    const std::string vdd_spec =
        "{\"kind\":\"vdd_sweep\",\"workload\":\"spec:gcc\","
        "\"accesses\":20000,\"vdd\":0.75}";
    const std::string explore_spec =
        "{\"kind\":\"explore\",\"accesses\":10000,\"explore\":{"
        "\"workloads\":[\"gcc\"],\"sizes_kb\":[16],\"ways\":[2],"
        "\"blocks\":[32]}}";
    const std::string expected_vdd =
        app::runJobSpec(core::JobSpec::fromJsonText(vdd_spec)).document;
    const std::string expected_explore =
        app::runJobSpec(core::JobSpec::fromJsonText(explore_spec))
            .document;

    DaemonFixture fx;
    net::DaemonClient client(fx.socket());
    EXPECT_EQ(client.call(vdd_spec), expected_vdd);
    EXPECT_EQ(client.call(explore_spec), expected_explore);
}

TEST(DaemonTest, SecondIdenticalRequestIsAMemoHit)
{
    DaemonFixture fx;
    const std::uint64_t memo_before =
        obs::globalMetrics().daemon().memoHits;

    net::DaemonClient first(fx.socket());
    const std::string a = first.call(kRunSpec);

    // A different client, same spec: byte-identical answer, served
    // from the whole-result memo without re-running the simulation.
    net::DaemonClient second(fx.socket());
    const std::string b = second.call(kRunSpec);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(eventually([&] {
        return obs::globalMetrics().daemon().memoHits > memo_before;
    }));
}

TEST(DaemonTest, EquivalentSpecsShareTheMemoEntry)
{
    DaemonFixture fx;
    const std::uint64_t memo_before =
        obs::globalMetrics().daemon().memoHits;
    net::DaemonClient client(fx.socket());
    const std::string a = client.call(kRunSpec);
    // Key order and explicit defaults don't matter: the memo keys on
    // the canonical spec serialization, not the request bytes.
    const std::string b = client.call(
        "{\"accesses\":50000,\"workload\":\"spec:gcc\","
        "\"kind\":\"run\",\"warmup\":0}");
    EXPECT_EQ(a, b);
    EXPECT_TRUE(eventually([&] {
        return obs::globalMetrics().daemon().memoHits > memo_before;
    }));
}

TEST(DaemonTest, BadSpecGetsErrorFrameAndConnectionSurvives)
{
    DaemonFixture fx;
    net::DaemonClient client(fx.socket());

    client.submit("{\"kind\":\"run\",\"acceses\":5}");
    client.submit(kRunSpec);

    net::Frame f;
    bool saw_error = false;
    std::string final_doc;
    while (client.read(f)) {
        if (f.type == net::FrameType::Error) {
            EXPECT_NE(f.payload.find("acceses"), std::string::npos);
            EXPECT_NE(f.payload.find("\"job\":0"), std::string::npos);
            saw_error = true;
        } else if (f.type == net::FrameType::Final) {
            final_doc = f.payload;
            break;
        }
    }
    EXPECT_TRUE(saw_error);
    EXPECT_FALSE(final_doc.empty());
}

TEST(DaemonTest, ProgressAndPartialFramesCarryTheJobIndex)
{
    DaemonFixture fx;
    net::DaemonClient client(fx.socket());
    client.submit(kRunSpec);

    bool saw_partial = false;
    net::Frame f;
    while (client.read(f)) {
        if (f.type == net::FrameType::Partial) {
            EXPECT_NE(f.payload.find("\"job\":0"), std::string::npos);
            EXPECT_NE(f.payload.find("\"scheme\""), std::string::npos);
            saw_partial = true;
        }
        if (f.type == net::FrameType::Final)
            break;
    }
    EXPECT_TRUE(saw_partial);
}

TEST(DaemonTest, OversizedLengthPrefixGetsProtocolError)
{
    DaemonFixture fx;
    net::Fd fd = net::connectUnix(fx.socket());
    const char header[5] = {1, '\x7f', '\xff', '\xff', '\xff'};
    net::writeAll(fd.get(), header, sizeof(header));

    net::FrameReader reader;
    char buf[4096];
    std::string error_payload;
    for (;;) {
        const std::size_t n = net::readSome(fd.get(), buf, sizeof(buf));
        if (n == 0)
            break;
        reader.feed(buf, n);
        net::Frame f;
        while (reader.next(f)) {
            if (f.type == net::FrameType::Error)
                error_payload = f.payload;
        }
    }
    EXPECT_NE(error_payload.find("length prefix"), std::string::npos);
}

TEST(DaemonTest, NonRequestFrameFromClientGetsProtocolError)
{
    DaemonFixture fx;
    net::Fd fd = net::connectUnix(fx.socket());
    const std::string bytes =
        net::encodeFrame(net::FrameType::Progress, "{}");
    net::writeAll(fd.get(), bytes.data(), bytes.size());

    net::FrameReader reader;
    char buf[4096];
    std::string error_payload;
    for (;;) {
        const std::size_t n = net::readSome(fd.get(), buf, sizeof(buf));
        if (n == 0)
            break;
        reader.feed(buf, n);
        net::Frame f;
        while (reader.next(f)) {
            if (f.type == net::FrameType::Error)
                error_payload = f.payload;
        }
    }
    EXPECT_NE(error_payload.find("progress"), std::string::npos);
}

TEST(DaemonTest, TruncatedFrameAtEofDoesNotWedgeTheDaemon)
{
    DaemonFixture fx;
    {
        // Header promises 100 bytes; only 10 arrive, then the client
        // vanishes mid-frame.
        net::Fd fd = net::connectUnix(fx.socket());
        const std::string full = net::encodeFrame(
            net::FrameType::Request, std::string(100, 'x'));
        net::writeAll(fd.get(), full.data(), 15);
    }
    // The daemon must shrug that off and keep serving.
    net::DaemonClient client(fx.socket());
    EXPECT_FALSE(client.call(kRunSpec).empty());
}

TEST(DaemonTest, MidJobDisconnectCancelsTheJob)
{
    net::DaemonConfig cfg;
    cfg.workers = 1;     // serialize tasks so one is dropped pending
    cfg.heartbeatMs = 10; // fast write-side disconnect detection
    DaemonFixture fx(cfg);

    const std::uint64_t cancelled_before =
        obs::globalMetrics().daemon().jobsCancelled;
    {
        net::DaemonClient client(fx.socket());
        // Big enough to still be running when the client vanishes.
        client.submit(
            "{\"kind\":\"run\",\"workload\":\"spec:gcc\","
            "\"accesses\":2000000}");
        std::this_thread::sleep_for(50ms);
        client.close(); // vanish, no half-close courtesy
    }
    // The next heartbeat/progress write fails (EPIPE), which cancels
    // the client's pool slot; the executor records the cancellation.
    EXPECT_TRUE(eventually([&] {
        return obs::globalMetrics().daemon().jobsCancelled >
               cancelled_before;
    }));
}

TEST(DaemonTest, ConcurrentClientsAllGetCorrectBytes)
{
    const std::vector<std::string> specs = {
        "{\"kind\":\"run\",\"workload\":\"spec:gcc\","
        "\"accesses\":40000}",
        "{\"kind\":\"run\",\"workload\":\"spec:mcf\","
        "\"accesses\":40000}",
        "{\"kind\":\"run\",\"workload\":\"kernel:hash_update\","
        "\"accesses\":40000}",
    };
    std::vector<std::string> expected;
    for (const std::string &s : specs) {
        expected.push_back(
            app::runJobSpec(core::JobSpec::fromJsonText(s)).document);
    }

    DaemonFixture fx;
    std::vector<std::string> got(specs.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        clients.emplace_back([&, i] {
            net::DaemonClient client(fx.socket());
            got[i] = client.call(specs[i]);
        });
    }
    for (auto &t : clients)
        t.join();
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << specs[i];
}

TEST(DaemonTest, StopDrainsAcceptedJobs)
{
    net::DaemonConfig cfg;
    cfg.heartbeatMs = 10; // frequent metric publication for the poll
    const std::uint64_t accepted_before =
        obs::globalMetrics().daemon().jobsAccepted;

    DaemonFixture fx(cfg);
    net::DaemonClient client(fx.socket());
    client.submit(kRunSpec);
    client.submit(
        "{\"kind\":\"run\",\"workload\":\"spec:gcc\","
        "\"accesses\":60000}");

    // Wait until the reader has actually accepted both requests, then
    // ask for shutdown: a drain, not an abort.
    ASSERT_TRUE(eventually([&] {
        return obs::globalMetrics().daemon().jobsAccepted >=
               accepted_before + 2;
    }));
    fx.daemon().stop();

    int finals = 0;
    net::Frame f;
    while (client.read(f)) {
        if (f.type == net::FrameType::Final) {
            EXPECT_FALSE(f.payload.empty());
            ++finals;
        }
        EXPECT_NE(f.type, net::FrameType::Error);
    }
    // Both accepted jobs were answered before the connection closed.
    EXPECT_EQ(finals, 2);
}

} // namespace
