/**
 * @file
 * Tests for the statistics registry wiring: every component registers
 * its counters and the controller's dump contains the whole hierarchy.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/controller.hh"
#include "stats/registry.hh"

namespace
{

using namespace c8t;
using core::CacheController;
using core::ControllerConfig;
using core::WriteScheme;

trace::MemAccess
writeAcc(std::uint64_t addr, std::uint64_t data)
{
    trace::MemAccess a;
    a.addr = addr;
    a.type = trace::AccessType::Write;
    a.data = data;
    return a;
}

TEST(StatsWiring, GroupingControllerRegistersEverything)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGroupingReadBypass;
    CacheController c(cfg, memory);

    stats::Registry reg;
    c.registerStats(reg);

    // Controller counters.
    EXPECT_NE(reg.counter("ctrl.requests"), nullptr);
    EXPECT_NE(reg.counter("ctrl.demand_row_reads"), nullptr);
    EXPECT_NE(reg.counter("ctrl.grouped_writes"), nullptr);
    EXPECT_NE(reg.counter("ctrl.bypassed_reads"), nullptr);
    // Component counters.
    EXPECT_NE(reg.counter("cache.hits"), nullptr);
    EXPECT_NE(reg.counter("array.row_reads"), nullptr);
    EXPECT_NE(reg.counter("ports.stall_cycles"), nullptr);
    EXPECT_NE(reg.counter("tagbuf.probes"), nullptr);
    EXPECT_NE(reg.counter("setbuf.updates"), nullptr);
    // Distributions.
    EXPECT_NE(reg.distribution("ctrl.group_sizes"), nullptr);
    EXPECT_NE(reg.distribution("ctrl.read_latency"), nullptr);
}

TEST(StatsWiring, NonGroupingControllerOmitsBufferStats)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::Rmw;
    CacheController c(cfg, memory);

    stats::Registry reg;
    c.registerStats(reg);
    EXPECT_EQ(reg.counter("tagbuf.probes"), nullptr);
    EXPECT_EQ(reg.counter("setbuf.updates"), nullptr);
    EXPECT_NE(reg.counter("array.row_writes"), nullptr);
}

TEST(StatsWiring, RegisteredCountersTrackLiveValues)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGrouping;
    CacheController c(cfg, memory);

    stats::Registry reg;
    c.registerStats(reg);

    c.access(writeAcc(0x1000, 1));
    c.access(writeAcc(0x1000, 2));

    EXPECT_EQ(reg.counter("ctrl.requests")->value(), 2u);
    EXPECT_EQ(reg.counter("ctrl.grouped_writes")->value(), 1u);
    EXPECT_EQ(reg.counter("setbuf.updates")->value(), 2u);
}

TEST(StatsWiring, DumpContainsComponentSections)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGroupingReadBypass;
    CacheController c(cfg, memory);
    c.access(writeAcc(0x2000, 7));

    std::ostringstream os;
    c.dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"ctrl.requests", "cache.misses", "array.row_reads",
          "tagbuf.tag_hits", "setbuf.silent_updates",
          "ctrl.group_sizes::mean"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(StatsWiring, RegistryResetAllClearsControllerCounters)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGrouping;
    CacheController c(cfg, memory);

    stats::Registry reg;
    c.registerStats(reg);
    c.access(writeAcc(0x3000, 9));
    ASSERT_GT(reg.counter("ctrl.requests")->value(), 0u);

    reg.resetAll();
    EXPECT_EQ(c.requests(), 0u);
    EXPECT_EQ(c.demandAccesses(), 0u);
}

} // anonymous namespace
