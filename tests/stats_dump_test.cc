/**
 * @file
 * Tests for the statistics registry wiring and the observability
 * layer: every component registers its counters, the controller's
 * dump contains the whole hierarchy, dumpJson() is schema-stable, the
 * event ring reconciles exactly with the counters, and the trace /
 * snapshot exporters produce well-formed output.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/controller.hh"
#include "obs/chrome_trace.hh"
#include "obs/event_ring.hh"
#include "obs/snapshot.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::CacheController;
using core::ControllerConfig;
using core::WriteScheme;

trace::MemAccess
writeAcc(std::uint64_t addr, std::uint64_t data)
{
    trace::MemAccess a;
    a.addr = addr;
    a.type = trace::AccessType::Write;
    a.data = data;
    return a;
}

TEST(StatsWiring, GroupingControllerRegistersEverything)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGroupingReadBypass;
    CacheController c(cfg, memory);

    stats::Registry reg;
    c.registerStats(reg);

    // Controller counters.
    EXPECT_NE(reg.counter("ctrl.requests"), nullptr);
    EXPECT_NE(reg.counter("ctrl.demand_row_reads"), nullptr);
    EXPECT_NE(reg.counter("ctrl.grouped_writes"), nullptr);
    EXPECT_NE(reg.counter("ctrl.bypassed_reads"), nullptr);
    // Component counters.
    EXPECT_NE(reg.counter("cache.hits"), nullptr);
    EXPECT_NE(reg.counter("array.row_reads"), nullptr);
    EXPECT_NE(reg.counter("ports.stall_cycles"), nullptr);
    EXPECT_NE(reg.counter("tagbuf.probes"), nullptr);
    EXPECT_NE(reg.counter("setbuf.updates"), nullptr);
    // Distributions.
    EXPECT_NE(reg.distribution("ctrl.group_sizes"), nullptr);
    EXPECT_NE(reg.distribution("ctrl.read_latency"), nullptr);
}

TEST(StatsWiring, NonGroupingControllerOmitsBufferStats)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::Rmw;
    CacheController c(cfg, memory);

    stats::Registry reg;
    c.registerStats(reg);
    EXPECT_EQ(reg.counter("tagbuf.probes"), nullptr);
    EXPECT_EQ(reg.counter("setbuf.updates"), nullptr);
    EXPECT_NE(reg.counter("array.row_writes"), nullptr);
}

TEST(StatsWiring, RegisteredCountersTrackLiveValues)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGrouping;
    CacheController c(cfg, memory);

    stats::Registry reg;
    c.registerStats(reg);

    c.access(writeAcc(0x1000, 1));
    c.access(writeAcc(0x1000, 2));

    EXPECT_EQ(reg.counter("ctrl.requests")->value(), 2u);
    EXPECT_EQ(reg.counter("ctrl.grouped_writes")->value(), 1u);
    EXPECT_EQ(reg.counter("setbuf.updates")->value(), 2u);
}

TEST(StatsWiring, DumpContainsComponentSections)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGroupingReadBypass;
    CacheController c(cfg, memory);
    c.access(writeAcc(0x2000, 7));

    std::ostringstream os;
    c.dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"ctrl.requests", "cache.misses", "array.row_reads",
          "tagbuf.tag_hits", "setbuf.silent_updates",
          "ctrl.group_sizes::mean"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(StatsWiring, RegistryResetAllClearsControllerCounters)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGrouping;
    CacheController c(cfg, memory);

    stats::Registry reg;
    c.registerStats(reg);
    c.access(writeAcc(0x3000, 9));
    ASSERT_GT(reg.counter("ctrl.requests")->value(), 0u);

    reg.resetAll();
    EXPECT_EQ(c.requests(), 0u);
    EXPECT_EQ(c.demandAccesses(), 0u);
}

// ---------------------------------------------------------------------
// dumpJson(): golden output.
//
// The full string is pinned on purpose: the JSON is a versioned,
// machine-readable interface (ISSUE: schema_version gates consumers),
// so any formatting or key change must show up here and force a
// conscious kJsonSchemaVersion decision.
// ---------------------------------------------------------------------

TEST(JsonDump, GoldenHandBuiltRegistry)
{
    stats::Counter c("a.count", "events");
    c.inc(3);
    stats::Gauge g("b.gauge", "volts");
    g.set(1.5);
    stats::Formula f("c.ratio", "a ratio", [] { return 0.5; });
    stats::Distribution d("d.lat", "latency", 0.0, 4.0, 2);
    d.sample(1.0);
    d.sample(3.0);

    stats::Registry reg;
    reg.add(c);
    reg.add(g);
    reg.add(f);
    reg.add(d);

    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_EQ(
        os.str(),
        "{\"schema_version\":5,"
        "\"counters\":{\"a.count\":{\"desc\":\"events\",\"value\":3}},"
        "\"gauges\":{\"b.gauge\":{\"desc\":\"volts\",\"value\":1.5}},"
        "\"formulas\":{\"c.ratio\":{\"desc\":\"a ratio\",\"value\":0.5}},"
        "\"distributions\":{\"d.lat\":{\"desc\":\"latency\",\"count\":2,"
        "\"mean\":2,\"stddev\":1,\"min\":1,\"max\":3,"
        "\"underflow\":0,\"overflow\":0,"
        "\"range_min\":0,\"range_max\":4,\"buckets\":[1,1]}}}");
}

TEST(JsonDump, EscapesDescriptionsAndEmptyRegistry)
{
    stats::Counter c("q", "say \"hi\"\tthen\nstop");
    stats::Registry reg;
    reg.add(c);
    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_NE(os.str().find("say \\\"hi\\\"\\tthen\\nstop"),
              std::string::npos);

    const stats::Registry empty;
    std::ostringstream os2;
    empty.dumpJson(os2);
    EXPECT_EQ(os2.str(),
              "{\"schema_version\":5,\"counters\":{},\"gauges\":{},"
              "\"formulas\":{},\"distributions\":{}}");
}

TEST(JsonDump, ControllerRegistryCarriesEveryStatKind)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGroupingReadBypass;
    CacheController c(cfg, memory);
    c.access(writeAcc(0x2000, 7));

    stats::Registry reg;
    c.registerStats(reg);
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string out = os.str();

    EXPECT_EQ(out.find("{\"schema_version\":5,"), 0u);
    for (const char *key :
         {"\"ctrl.requests\"", "\"cache.misses\"", "\"array.row_reads\"",
          "\"ctrl.group_sizes\"", "\"ctrl.read_latency\"",
          "\"buckets\":["}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    // Crude well-formedness: balanced braces/brackets, no trailing
    // comma before a closing token.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
    EXPECT_EQ(out.find(",}"), std::string::npos);
    EXPECT_EQ(out.find(",]"), std::string::npos);
}

TEST(JsonDump, VddGaugesOnlyPresentWhenModelActive)
{
    // Nominal (detached) controller: no vdd.* keys anywhere, so stats
    // consumers see byte-identical documents with or without the model
    // compiled in (DESIGN.md §10).
    mem::FunctionalMemory mem_nom;
    ControllerConfig nominal;
    nominal.scheme = WriteScheme::Rmw;
    CacheController cn(nominal, mem_nom);
    stats::Registry rn;
    cn.registerStats(rn);
    std::ostringstream on;
    rn.dumpJson(on);
    EXPECT_EQ(on.str().find("vdd."), std::string::npos);

    // Scaled controller: all six operating-point gauges appear and
    // carry the model's values.
    mem::FunctionalMemory mem_low;
    ControllerConfig low = nominal;
    low.vdd = 0.8;
    CacheController cl(low, mem_low);
    stats::Registry rl;
    cl.registerStats(rl);
    std::ostringstream ol;
    rl.dumpJson(ol);
    const std::string out = ol.str();
    for (const char *key :
         {"\"vdd.supply\"", "\"vdd.energy_scale\"",
          "\"vdd.leakage_scale\"", "\"vdd.delay_factor\"",
          "\"vdd.pfail_read\"", "\"vdd.pfail_write\""}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_NE(rl.gauge("vdd.supply"), nullptr);
    EXPECT_DOUBLE_EQ(rl.gauge("vdd.supply")->value(), 0.8);
}

// ---------------------------------------------------------------------
// EventRing unit behaviour.
// ---------------------------------------------------------------------

TEST(EventRing, DisabledRingIsANoOp)
{
    obs::EventRing ring;
    EXPECT_FALSE(ring.enabled());
    ring.record(obs::EventType::ArrayRead, 1, 2, 3, 4);
    EXPECT_EQ(ring.recorded(), 0u);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.typeCount(obs::EventType::ArrayRead), 0u);
}

TEST(EventRing, RecordsInOrderBelowCapacity)
{
    obs::EventRing ring(8);
    ring.record(obs::EventType::ArrayRead, 1, 10, 0x100, 1);
    ring.record(obs::EventType::ArrayWrite, 2, 20, 0x200, 2);
    ring.record(obs::EventType::ReadBypass, 3, 30, 0x300, 3);

    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.at(0).type, obs::EventType::ArrayRead);
    EXPECT_EQ(ring.at(1).type, obs::EventType::ArrayWrite);
    EXPECT_EQ(ring.at(2).type, obs::EventType::ReadBypass);
    EXPECT_EQ(ring.at(0).seq, 0u);
    EXPECT_EQ(ring.at(2).seq, 2u);
    EXPECT_EQ(ring.at(1).accessIndex, 2u);
    EXPECT_EQ(ring.at(1).cycle, 20u);
    EXPECT_EQ(ring.at(1).addr, 0x200u);
    EXPECT_EQ(ring.at(1).set, 2u);
}

TEST(EventRing, WrapAroundKeepsNewestAndCumulativeTotals)
{
    obs::EventRing ring(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        ring.record(obs::EventType::ArrayWrite, i, i, i, 0);

    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.recorded(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    // Wrap-proof totals are the reconciliation contract.
    EXPECT_EQ(ring.typeCount(obs::EventType::ArrayWrite), 10u);
    // The retained window is the newest four, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).seq, 6u + i);
}

TEST(EventRing, ClearForgetsEventsButKeepsCapacity)
{
    obs::EventRing ring(4);
    for (int i = 0; i < 6; ++i)
        ring.record(obs::EventType::Eviction, 0, 0, 0, 0);
    ring.clear();
    EXPECT_EQ(ring.recorded(), 0u);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.typeCount(obs::EventType::Eviction), 0u);
    EXPECT_TRUE(ring.enabled());
    ring.record(obs::EventType::Eviction, 0, 0, 0, 0);
    EXPECT_EQ(ring.at(0).seq, 0u);
}

// ---------------------------------------------------------------------
// Controller instrumentation: events reconcile exactly with counters,
// and tracing never changes a simulation statistic.
// ---------------------------------------------------------------------

std::vector<trace::MemAccess>
gccStream(std::uint64_t n)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    std::vector<trace::MemAccess> out(n);
    for (auto &a : out)
        gen.next(a);
    return out;
}

TEST(EventReconciliation, TypeTotalsMatchRegistryCounters)
{
    const auto stream = gccStream(50'000);

    for (WriteScheme scheme :
         {WriteScheme::SixTDirect, WriteScheme::Rmw,
          WriteScheme::LocalRmw, WriteScheme::WordGranular,
          WriteScheme::WriteGrouping,
          WriteScheme::WriteGroupingReadBypass}) {
        mem::FunctionalMemory memory;
        ControllerConfig cfg;
        cfg.scheme = scheme;
        CacheController ctrl(cfg, memory);

        stats::Registry reg;
        ctrl.registerStats(reg);

        // Deliberately tiny: the run wraps the ring thousands of
        // times, proving the totals are wrap-proof.
        obs::EventRing ring(256);
        ctrl.attachEventRing(&ring);
        for (const auto &a : stream)
            ctrl.access(a);

        const auto counter = [&](const char *name) {
            const stats::Counter *c = reg.counter(name);
            return c ? c->value() : 0u;
        };
        const auto events = [&](obs::EventType t) {
            return ring.typeCount(t);
        };
        using obs::EventType;
        EXPECT_EQ(events(EventType::ArrayRead),
                  counter("ctrl.demand_row_reads"))
            << toString(scheme);
        EXPECT_EQ(events(EventType::ArrayWrite),
                  counter("ctrl.demand_row_writes"))
            << toString(scheme);
        EXPECT_EQ(events(EventType::SetBufferMerge),
                  counter("ctrl.grouped_writes"))
            << toString(scheme);
        EXPECT_EQ(events(EventType::SilentWriteDrop),
                  counter("ctrl.silent_writes_detected"))
            << toString(scheme);
        EXPECT_EQ(events(EventType::PrematureWriteback),
                  counter("ctrl.premature_writebacks"))
            << toString(scheme);
        EXPECT_EQ(events(EventType::ReadBypass),
                  counter("ctrl.bypassed_reads"))
            << toString(scheme);
        EXPECT_EQ(events(EventType::Eviction),
                  counter("cache.evictions"))
            << toString(scheme);
        const bool rmw = scheme == WriteScheme::Rmw ||
                         scheme == WriteScheme::LocalRmw;
        EXPECT_EQ(events(EventType::RmwTrigger),
                  rmw ? counter("ctrl.writes") : 0u)
            << toString(scheme);

        // The ring saw real traffic and its bookkeeping is coherent.
        std::uint64_t total = 0;
        for (const std::uint64_t n : ring.typeCounts())
            total += n;
        EXPECT_EQ(total, ring.recorded()) << toString(scheme);
        EXPECT_GT(total, 0u) << toString(scheme);
    }
}

TEST(EventReconciliation, TracingChangesNoSimulationStatistic)
{
    const auto stream = gccStream(30'000);

    for (WriteScheme scheme :
         {WriteScheme::Rmw, WriteScheme::WriteGroupingReadBypass}) {
        ControllerConfig cfg;
        cfg.scheme = scheme;

        mem::FunctionalMemory mem_plain;
        CacheController plain(cfg, mem_plain);
        for (const auto &a : stream)
            plain.access(a);

        mem::FunctionalMemory mem_traced;
        CacheController traced(cfg, mem_traced);
        obs::EventRing ring(4096);
        traced.attachEventRing(&ring);
        for (const auto &a : stream)
            traced.access(a);

        std::ostringstream a, b;
        plain.dumpStats(a);
        traced.dumpStats(b);
        EXPECT_EQ(a.str(), b.str()) << toString(scheme);
    }
}

TEST(EventReconciliation, ResetStatsClearsTheAttachedRing)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGrouping;
    CacheController ctrl(cfg, memory);
    obs::EventRing ring(64);
    ctrl.attachEventRing(&ring);

    ctrl.access(writeAcc(0x40, 1));
    ASSERT_GT(ring.recorded(), 0u);
    ctrl.resetStats();
    EXPECT_EQ(ring.recorded(), 0u);
    // Post-reset traffic reconciles over the new window alone.
    ctrl.access(writeAcc(0x40, 2));
    EXPECT_GT(ring.recorded(), 0u);
}

// ---------------------------------------------------------------------
// Chrome trace writer and interval snapshotter output.
// ---------------------------------------------------------------------

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(ChromeTrace, WriterProducesAWellFormedDocument)
{
    const std::string path =
        testing::TempDir() + "c8t_chrome_trace_test.json";
    {
        obs::ChromeTraceWriter w(path);
        w.processName(1, "sweep");
        w.threadName(1, 1, "worker 0");
        w.completeEvent("job0", "sweep", 1, 1, 10.0, 25.5,
                        "{\"job\":0}");
        w.instantEvent("evt", "access", 1, 1, 12.0);
        w.close();
        // close() is idempotent and post-close events are dropped.
        w.completeEvent("late", "sweep", 1, 1, 0.0, 1.0);
        w.close();
    }
    const std::string out = slurp(path);
    EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(out.find("\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("\"worker 0\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":25.5"), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"job\":0}"), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_EQ(out.find("\"late\""), std::string::npos);
    EXPECT_EQ(out.rfind("]}\n"), out.size() - 3);
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    std::remove(path.c_str());
}

TEST(ChromeTrace, AppendEventRingEmitsSlicesAndTotals)
{
    const std::string path =
        testing::TempDir() + "c8t_chrome_ring_test.json";
    obs::EventRing ring(2);
    ring.record(obs::EventType::ArrayRead, 1, 100, 0x10, 3);
    ring.record(obs::EventType::ReadBypass, 2, 200, 0x20, 4);
    ring.record(obs::EventType::ReadBypass, 3, 300, 0x30, 5);
    {
        obs::ChromeTraceWriter w(path);
        obs::appendEventRing(w, ring, "WG+RB", 2, 1);
    }
    const std::string out = slurp(path);
    // The wrapped-out first event is gone; the retained two and the
    // wrap-proof totals record are present.
    EXPECT_EQ(out.find("\"ts\":100"), std::string::npos);
    EXPECT_NE(out.find("\"ts\":200"), std::string::npos);
    EXPECT_NE(out.find("\"ts\":300"), std::string::npos);
    EXPECT_NE(out.find("\"WG+RB\""), std::string::npos);
    EXPECT_NE(out.find("\"event_totals\""), std::string::npos);
    EXPECT_NE(out.find("\"recorded\":3"), std::string::npos);
    EXPECT_NE(out.find("\"dropped\":1"), std::string::npos);
    EXPECT_NE(out.find("\"array_read\":1"), std::string::npos);
    EXPECT_NE(out.find("\"read_bypass\":2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(IntervalSnapshot, EmitsOnlyMovedCounterDeltas)
{
    stats::Counter a("a.moves", "moves every interval");
    stats::Counter b("b.still", "never moves");
    stats::Registry reg;
    reg.add(a);
    reg.add(b);

    std::ostringstream os;
    obs::IntervalSnapshotter snap(reg, os, "WG");

    a.inc(5);
    snap.sample(100);
    a.inc(2);
    snap.sample(200);
    snap.sample(300); // nothing moved: deltas object is empty

    EXPECT_EQ(snap.samples(), 3u);
    std::istringstream lines(os.str());
    std::string l1, l2, l3;
    ASSERT_TRUE(std::getline(lines, l1));
    ASSERT_TRUE(std::getline(lines, l2));
    ASSERT_TRUE(std::getline(lines, l3));
    EXPECT_NE(l1.find("\"kind\":\"interval\""), std::string::npos);
    EXPECT_NE(l1.find("\"label\":\"WG\""), std::string::npos);
    EXPECT_NE(l1.find("\"access\":100"), std::string::npos);
    // Steady-clock timestamp: value is wall-time dependent, but the
    // field must be present on every line.
    EXPECT_NE(l1.find("\"elapsed_us\":"), std::string::npos);
    EXPECT_NE(l3.find("\"elapsed_us\":"), std::string::npos);
    EXPECT_NE(l1.find("\"a.moves\":5"), std::string::npos);
    EXPECT_EQ(l1.find("b.still"), std::string::npos);
    EXPECT_NE(l2.find("\"a.moves\":2"), std::string::npos);
    EXPECT_NE(l3.find("\"deltas\":{}"), std::string::npos);
}

} // anonymous namespace
