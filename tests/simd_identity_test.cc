/**
 * @file
 * SIMD-dispatch and batched-pipeline identity guarantees.
 *
 * The way-compare kernel (mem/simd.hh) and the set-batched chunk
 * pipeline (TagArray::planChunk + CacheController::runPlannedChunk)
 * are pure performance mechanisms: every dispatch level and both
 * drive paths must be invisible in every result. This suite pins
 * that end to end:
 *
 *  1. The way-compare kernels themselves produce bit-identical match
 *     masks at every level, for every ways count and tag pattern.
 *  2. Full runs over all 25 calibrated SPEC profiles and every
 *     kernel workload produce bit-identical SchemeRunResults and
 *     byte-identical stats-registry JSON under forced scalar, SSE2,
 *     AVX2 and auto dispatch.
 *  3. The parallel sweep engine is level-invariant across 1/2/8
 *     workers.
 *  4. The recorded event stream (the legacy per-access path, which
 *     event observers force) is identical at every level.
 *  5. The planned chunk pipeline reproduces the per-access access()
 *     loop bit-for-bit, including the stats JSON.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/options.hh"
#include "core/controller.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "mem/simd.hh"
#include "obs/event_ring.hh"
#include "stats/registry.hh"
#include "trace/markov_stream.hh"
#include "trace/replay.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::CacheController;
using core::ControllerConfig;
using core::RunConfig;
using core::SchemeRunResult;
using core::WriteScheme;
using mem::simd::SimdLevel;

/** Every level this binary + CPU can actually run (scalar first). */
std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    for (SimdLevel l : {SimdLevel::Sse2, SimdLevel::Avx2}) {
        if (mem::simd::setLevel(l) == l)
            levels.push_back(l);
    }
    return levels;
}

/** Restore dispatch to the environment-resolved default on scope
 *  exit so test order cannot leak a forced level. */
struct LevelGuard
{
    ~LevelGuard() { mem::simd::setLevel(mem::simd::bestSupported()); }
};

/** The schemes every identity run covers (the four the figures use). */
std::vector<ControllerConfig>
allSchemeConfigs()
{
    std::vector<ControllerConfig> cfgs;
    for (WriteScheme s :
         {WriteScheme::SixTDirect, WriteScheme::Rmw,
          WriteScheme::WriteGrouping,
          WriteScheme::WriteGroupingReadBypass}) {
        ControllerConfig c;
        c.scheme = s;
        cfgs.push_back(c);
    }
    return cfgs;
}

/** One full multi-scheme run plus the per-controller stats JSON. */
struct RunDigest
{
    std::vector<SchemeRunResult> results;
    std::vector<std::string> statsJson;
};

/** Run @p spec through all schemes at the *current* dispatch level. */
RunDigest
runWorkload(const std::string &spec, const RunConfig &rc)
{
    core::MultiSchemeRunner runner(allSchemeConfigs());
    auto gen = app::makeWorkload(spec);
    RunDigest d;
    d.results = runner.run(*gen, rc);
    for (std::size_t i = 0; i < d.results.size(); ++i) {
        stats::Registry reg;
        runner.controller(i).registerStats(reg);
        std::ostringstream os;
        reg.dumpJson(os);
        d.statsJson.push_back(os.str());
    }
    return d;
}

/** Field-wise bit-equality of two results (doubles compared exactly:
 *  the identity claim is bit-level, not approximate). */
void
expectSameResult(const SchemeRunResult &a, const SchemeRunResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.workload, b.workload) << what;
    EXPECT_EQ(a.scheme, b.scheme) << what;
    EXPECT_EQ(a.requests, b.requests) << what;
    EXPECT_EQ(a.reads, b.reads) << what;
    EXPECT_EQ(a.writes, b.writes) << what;
    EXPECT_EQ(a.demandAccesses, b.demandAccesses) << what;
    EXPECT_EQ(a.demandRowReads, b.demandRowReads) << what;
    EXPECT_EQ(a.demandRowWrites, b.demandRowWrites) << what;
    EXPECT_EQ(a.fillAccesses, b.fillAccesses) << what;
    EXPECT_EQ(a.hits, b.hits) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.groupedWrites, b.groupedWrites) << what;
    EXPECT_EQ(a.bypassedReads, b.bypassedReads) << what;
    EXPECT_EQ(a.prematureWritebacks, b.prematureWritebacks) << what;
    EXPECT_EQ(a.silentWritesDetected, b.silentWritesDetected) << what;
    EXPECT_EQ(a.silentGroupsElided, b.silentGroupsElided) << what;
    EXPECT_EQ(a.meanGroupSize, b.meanGroupSize) << what;
    EXPECT_EQ(a.portStallCycles, b.portStallCycles) << what;
    EXPECT_EQ(a.portConflicts, b.portConflicts) << what;
    EXPECT_EQ(a.meanReadLatency, b.meanReadLatency) << what;
    EXPECT_EQ(a.dynamicEnergy, b.dynamicEnergy) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
}

void
expectSameDigest(const RunDigest &a, const RunDigest &b,
                 const std::string &what)
{
    ASSERT_EQ(a.results.size(), b.results.size()) << what;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        expectSameResult(a.results[i], b.results[i],
                         what + "/" + a.results[i].scheme);
        EXPECT_EQ(a.statsJson[i], b.statsJson[i])
            << what << "/" << a.results[i].scheme << ": stats JSON";
    }
}

TEST(SimdKernels, MatchMasksBitIdenticalAcrossLevels)
{
    // Tag patterns chosen to stress the compare: duplicates, the
    // SSE2 half-word trap (equal low halves, different high halves),
    // all-ones, zero, and odd tails for every ways count 1..16.
    const mem::Addr patterns[] = {
        0x0ull,
        0x1ull,
        0xffffffffffffffffull,
        0x00000001'00000002ull,
        0x00000002'00000001ull,
        0x12345678'12345678ull,
        0xdeadbeef'cafef00dull,
    };
    std::vector<mem::Addr> tags;
    for (std::uint32_t ways = 1; ways <= 16; ++ways) {
        tags.clear();
        for (std::uint32_t w = 0; w < ways; ++w)
            tags.push_back(patterns[w % std::size(patterns)]);
        for (mem::Addr needle : patterns) {
            const std::uint64_t scalar = mem::simd::matchBitsScalar(
                tags.data(), ways, needle);
            for (SimdLevel l : supportedLevels()) {
                EXPECT_EQ(mem::simd::matchBits(l, tags.data(), ways,
                                               needle),
                          scalar)
                    << "ways=" << ways << " needle=" << needle
                    << " level=" << mem::simd::toString(l);
            }
        }
    }
}

TEST(SimdKernels, AutoCalibrationPicksASupportedStableLevel)
{
    // The calibrated level must be executable (<= bestSupported())
    // and cached: C8T_SIMD=auto may not flap between runs inside one
    // process. Which level wins is host-dependent (the point of
    // measuring), so only the contract is pinned; correctness is
    // already covered by the mask-identity test above.
    const SimdLevel calibrated = mem::simd::autoCalibratedLevel();
    EXPECT_LE(static_cast<int>(calibrated),
              static_cast<int>(mem::simd::bestSupported()));
    EXPECT_EQ(mem::simd::autoCalibratedLevel(), calibrated);
    EXPECT_EQ(mem::simd::parseLevel("auto"), calibrated);
    EXPECT_EQ(mem::simd::parseLevel(""), calibrated);
}

TEST(SimdIdentity, SpecProfilesIdenticalAcrossLevels)
{
    LevelGuard guard;
    const RunConfig rc{1'000, 8'000};
    const auto levels = supportedLevels();
    for (const std::string &name : trace::specBenchmarkNames()) {
        mem::simd::setLevel(SimdLevel::Scalar);
        const RunDigest base = runWorkload("spec:" + name, rc);
        for (std::size_t i = 1; i < levels.size(); ++i) {
            mem::simd::setLevel(levels[i]);
            expectSameDigest(base, runWorkload("spec:" + name, rc),
                             name + "@" +
                                 mem::simd::toString(levels[i]));
        }
    }
}

TEST(SimdIdentity, KernelWorkloadsIdenticalAcrossLevels)
{
    LevelGuard guard;
    const RunConfig rc{1'000, 8'000};
    const auto levels = supportedLevels();
    for (const std::string &name : app::kernelNames()) {
        mem::simd::setLevel(SimdLevel::Scalar);
        const RunDigest base = runWorkload("kernel:" + name, rc);
        for (std::size_t i = 1; i < levels.size(); ++i) {
            mem::simd::setLevel(levels[i]);
            expectSameDigest(base, runWorkload("kernel:" + name, rc),
                             name + "@" +
                                 mem::simd::toString(levels[i]));
        }
    }
}

TEST(SimdIdentity, ParallelSweepIdenticalAcrossLevelsAndWorkers)
{
    LevelGuard guard;
    const mem::CacheConfig cache;
    const std::vector<WriteScheme> schemes = {
        WriteScheme::Rmw, WriteScheme::WriteGroupingReadBypass};
    const RunConfig rc{1'000, 8'000};

    mem::simd::setLevel(SimdLevel::Scalar);
    const auto base =
        core::ParallelSweeper(1).run(core::specSweepJobs(cache, schemes),
                                     rc, "simd_identity");

    for (SimdLevel l : supportedLevels()) {
        for (unsigned workers : {1u, 2u, 8u}) {
            mem::simd::setLevel(l);
            const auto got = core::ParallelSweeper(workers).run(
                core::specSweepJobs(cache, schemes), rc,
                "simd_identity");
            ASSERT_EQ(base.size(), got.size());
            for (std::size_t j = 0; j < base.size(); ++j) {
                ASSERT_EQ(base[j].size(), got[j].size());
                for (std::size_t s = 0; s < base[j].size(); ++s) {
                    expectSameResult(
                        base[j][s], got[j][s],
                        std::string("job ") + std::to_string(j) + "@" +
                            mem::simd::toString(l) + "/workers=" +
                            std::to_string(workers));
                }
            }
        }
    }
}

TEST(SimdIdentity, EventStreamIdenticalAcrossLevels)
{
    LevelGuard guard;
    constexpr std::uint64_t kAccesses = 10'000;
    auto buffer = std::make_shared<std::vector<trace::MemAccess>>();
    {
        trace::MarkovStream gen(trace::specProfile("gcc"));
        buffer->resize(kAccesses);
        gen.fillChunk(buffer->data(), kAccesses);
    }

    // Event observers force the per-access path; the recorded stream
    // (every field of every event, in order) must not depend on the
    // dispatch level the tag compares run at.
    auto record = [&](SimdLevel l) {
        mem::simd::setLevel(l);
        mem::FunctionalMemory memory;
        ControllerConfig cfg;
        cfg.scheme = WriteScheme::WriteGroupingReadBypass;
        CacheController ctrl(cfg, memory);
        obs::EventRing ring(1u << 18);
        ctrl.attachEventRing(&ring);
        for (const auto &a : *buffer)
            ctrl.access(a);
        ctrl.drain();
        // Ring sized to retain the whole run: wrap-around would make
        // the comparison silently partial.
        EXPECT_EQ(ring.dropped(), 0u);
        std::vector<obs::Event> events;
        events.reserve(ring.size());
        for (std::size_t i = 0; i < ring.size(); ++i)
            events.push_back(ring.at(i));
        return events;
    };

    const auto base = record(SimdLevel::Scalar);
    ASSERT_FALSE(base.empty());
    for (SimdLevel l : supportedLevels()) {
        const auto got = record(l);
        ASSERT_EQ(base.size(), got.size()) << mem::simd::toString(l);
        for (std::size_t i = 0; i < base.size(); ++i) {
            EXPECT_EQ(base[i].seq, got[i].seq);
            EXPECT_EQ(base[i].accessIndex, got[i].accessIndex);
            EXPECT_EQ(base[i].cycle, got[i].cycle);
            EXPECT_EQ(base[i].addr, got[i].addr);
            EXPECT_EQ(base[i].set, got[i].set);
            EXPECT_EQ(base[i].type, got[i].type);
        }
    }
}

TEST(BatchedPipeline, PlannedChunksMatchPerAccessLoop)
{
    LevelGuard guard;
    const RunConfig rc{2'000, 20'000};
    auto buffer = std::make_shared<std::vector<trace::MemAccess>>();
    {
        trace::MarkovStream gen(trace::specProfile("gcc"));
        buffer->resize(rc.warmupAccesses + rc.measureAccesses);
        gen.fillChunk(buffer->data(), buffer->size());
    }

    for (SimdLevel l : supportedLevels()) {
        mem::simd::setLevel(l);

        // Batched: the runner plans each chunk and applies it through
        // runPlannedChunk (the default LRU shape is plan-eligible).
        core::MultiSchemeRunner runner(allSchemeConfigs());
        trace::ReplayGenerator replay("gcc", buffer);
        RunDigest batched;
        batched.results = runner.run(replay, rc);
        for (std::size_t i = 0; i < batched.results.size(); ++i) {
            stats::Registry reg;
            runner.controller(i).registerStats(reg);
            std::ostringstream os;
            reg.dumpJson(os);
            batched.statsJson.push_back(os.str());
        }

        // Reference: the historical one-access-at-a-time loop.
        RunDigest legacy;
        for (const ControllerConfig &cfg : allSchemeConfigs()) {
            mem::FunctionalMemory memory;
            CacheController ctrl(cfg, memory);
            for (std::uint64_t i = 0; i < rc.warmupAccesses; ++i)
                ctrl.access((*buffer)[i]);
            ctrl.resetStats();
            for (std::size_t i = rc.warmupAccesses; i < buffer->size();
                 ++i)
                ctrl.access((*buffer)[i]);
            ctrl.drain();
            legacy.results.push_back(core::snapshotResult("gcc", ctrl));
            stats::Registry reg;
            ctrl.registerStats(reg);
            std::ostringstream os;
            reg.dumpJson(os);
            legacy.statsJson.push_back(os.str());
        }

        expectSameDigest(legacy, batched,
                         std::string("planned@") +
                             mem::simd::toString(l));
    }
}

} // anonymous namespace
