/**
 * @file
 * Differential property test of the packed (devirtualized) tag
 * pipeline against the virtual ReplacementPolicy oracle.
 *
 * The TagArray's structure-of-arrays layout and per-set replacement
 * encodings (DESIGN.md §7) must be observably identical to the
 * reference model: a per-way tag loop plus a virtual policy object.
 * This test replays randomized access/fill/dirty streams through both
 * and compares the hit/miss sequence, the hit way, every victim
 * choice (fill way and eviction info) and the final
 * tag/valid/dirty state — for all four ReplKinds over assorted way
 * counts, including LRU with ways > 8, which exercises the TagArray's
 * own oracle fallback.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "mem/cache.hh"
#include "mem/replacement.hh"
#include "trace/rng.hh"

namespace
{

using namespace c8t::mem;

/**
 * The reference model: the historical array-of-structures TagArray
 * semantics — a per-way compare loop over per-way valid/dirty flags,
 * replacement delegated to the virtual policy classes.
 */
class OracleTags
{
  public:
    explicit OracleTags(const CacheConfig &cfg)
        : _layout(cfg.blockBytes, cfg.numSets()), _ways(cfg.ways),
          _tags(static_cast<std::size_t>(cfg.numSets()) * cfg.ways, 0),
          _valid(_tags.size(), false), _dirty(_tags.size(), false),
          _repl(makeReplacementPolicy(cfg.replacement, cfg.numSets(),
                                      cfg.ways))
    {}

    LookupResult access(Addr addr)
    {
        const std::uint32_t set = _layout.setOf(addr);
        const Addr tag = _layout.tagOf(addr);
        for (std::uint32_t w = 0; w < _ways; ++w) {
            const std::size_t i = index(set, w);
            if (_valid[i] && _tags[i] == tag) {
                _repl->touch(set, w);
                return {true, w};
            }
        }
        return {false, 0};
    }

    FillResult fill(Addr addr)
    {
        const std::uint32_t set = _layout.setOf(addr);
        const std::uint32_t way = _repl->victim(set, validMask(set));
        const std::size_t i = index(set, way);

        FillResult r;
        r.way = way;
        if (_valid[i]) {
            r.evictedValid = true;
            r.evictedDirty = _dirty[i];
            r.evictedBlockAddr = _layout.blockAddr(_tags[i], set);
        }
        _tags[i] = _layout.tagOf(addr);
        _valid[i] = true;
        _dirty[i] = false;
        _repl->insert(set, way);
        return r;
    }

    void markDirty(std::uint32_t set, std::uint32_t way)
    {
        _dirty[index(set, way)] = true;
    }

    std::uint64_t validMask(std::uint32_t set) const
    {
        std::uint64_t m = 0;
        for (std::uint32_t w = 0; w < _ways; ++w)
            m |= static_cast<std::uint64_t>(_valid[index(set, w)]) << w;
        return m;
    }

    bool isValid(std::uint32_t set, std::uint32_t way) const
    {
        return _valid[index(set, way)];
    }

    bool isDirty(std::uint32_t set, std::uint32_t way) const
    {
        return _dirty[index(set, way)];
    }

    Addr tagAt(std::uint32_t set, std::uint32_t way) const
    {
        return _tags[index(set, way)];
    }

    const AddrLayout &layout() const { return _layout; }

  private:
    std::size_t index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * _ways + way;
    }

    AddrLayout _layout;
    std::uint32_t _ways;
    std::vector<Addr> _tags;
    std::vector<bool> _valid;
    std::vector<bool> _dirty;
    std::unique_ptr<ReplacementPolicy> _repl;
};

struct Shape
{
    ReplKind kind;
    std::uint32_t ways;
    bool packed; //!< expected TagArray::usesPackedReplacement()
};

std::string
shapeName(const Shape &s)
{
    std::ostringstream os;
    os << toString(s.kind) << "/" << s.ways << "w";
    return os.str();
}

CacheConfig
configOf(const Shape &s)
{
    // 8 sets keep conflict pressure high so victims are exercised
    // constantly; 3x-ways distinct tags per set guarantee evictions.
    CacheConfig cfg;
    cfg.blockBytes = 32;
    cfg.ways = s.ways;
    cfg.sizeBytes =
        static_cast<std::uint64_t>(8) * s.ways * cfg.blockBytes;
    cfg.replacement = s.kind;
    return cfg;
}

/** Replay one randomized stream through both models, comparing every
 *  observable step and the complete final state. */
void
runDifferential(const Shape &shape, std::uint64_t seed,
                std::uint64_t steps)
{
    const CacheConfig cfg = configOf(shape);
    TagArray dut(cfg);
    OracleTags oracle(cfg);

    ASSERT_EQ(dut.usesPackedReplacement(), shape.packed)
        << shapeName(shape);

    c8t::trace::Rng rng(seed);
    const std::uint32_t tagSpan = 3 * shape.ways;

    for (std::uint64_t i = 0; i < steps; ++i) {
        const std::uint32_t set =
            rng.below(cfg.numSets()); // uniform over the 8 sets
        const Addr tag = rng.below(tagSpan);
        const Addr addr = oracle.layout().blockAddr(tag, set);

        const LookupResult d = dut.access(addr);
        const LookupResult o = oracle.access(addr);
        ASSERT_EQ(d.hit, o.hit)
            << shapeName(shape) << " step " << i;
        if (d.hit) {
            ASSERT_EQ(d.way, o.way)
                << shapeName(shape) << " step " << i;
        } else {
            const FillResult fd = dut.fill(addr);
            const FillResult fo = oracle.fill(addr);
            ASSERT_EQ(fd.way, fo.way)
                << shapeName(shape) << " victim at step " << i;
            ASSERT_EQ(fd.evictedValid, fo.evictedValid)
                << shapeName(shape) << " step " << i;
            ASSERT_EQ(fd.evictedDirty, fo.evictedDirty)
                << shapeName(shape) << " step " << i;
            if (fd.evictedValid) {
                ASSERT_EQ(fd.evictedBlockAddr, fo.evictedBlockAddr)
                    << shapeName(shape) << " step " << i;
            }
        }

        // Dirty the touched block half the time, through the
        // way-direct hot-path entry point.
        if (rng.below(2) == 0) {
            const LookupResult where = dut.probe(addr);
            ASSERT_TRUE(where.hit);
            dut.markDirtyWay(set, where.way);
            oracle.markDirty(set, where.way);
        }
    }

    // Final state: every way's tag/valid/dirty must agree.
    for (std::uint32_t set = 0; set < cfg.numSets(); ++set) {
        ASSERT_EQ(dut.validMask(set), oracle.validMask(set))
            << shapeName(shape) << " set " << set;
        for (std::uint32_t w = 0; w < cfg.ways; ++w) {
            ASSERT_EQ(dut.isValid(set, w), oracle.isValid(set, w))
                << shapeName(shape) << " set " << set << " way " << w;
            ASSERT_EQ(dut.isDirty(set, w), oracle.isDirty(set, w))
                << shapeName(shape) << " set " << set << " way " << w;
            if (dut.isValid(set, w)) {
                ASSERT_EQ(dut.tagAt(set, w), oracle.tagAt(set, w))
                    << shapeName(shape) << " set " << set << " way "
                    << w;
            }
        }
    }
}

class PackedReplDifferential : public ::testing::TestWithParam<Shape>
{};

TEST_P(PackedReplDifferential, MatchesOracleOnRandomStreams)
{
    for (std::uint64_t seed : {1ull, 42ull, 20260805ull})
        runDifferential(GetParam(), seed, 4000);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndWays, PackedReplDifferential,
    ::testing::Values(
        // LRU: packed byte-per-way recency word up to 8 ways; the
        // 16-way shape falls back to the virtual oracle inside the
        // TagArray and must still match the external reference.
        Shape{ReplKind::Lru, 1, true}, Shape{ReplKind::Lru, 2, true},
        Shape{ReplKind::Lru, 4, true}, Shape{ReplKind::Lru, 8, true},
        Shape{ReplKind::Lru, 16, false},
        // Tree-PLRU: packed tree bits (ways must be a power of two).
        Shape{ReplKind::TreePlru, 2, true},
        Shape{ReplKind::TreePlru, 4, true},
        Shape{ReplKind::TreePlru, 8, true},
        Shape{ReplKind::TreePlru, 16, true},
        // FIFO: packed per-set fill counter.
        Shape{ReplKind::Fifo, 1, true}, Shape{ReplKind::Fifo, 2, true},
        Shape{ReplKind::Fifo, 4, true}, Shape{ReplKind::Fifo, 8, true},
        Shape{ReplKind::Fifo, 16, true},
        // Random: stateless, shared deterministic RNG; equivalence
        // relies on both sides drawing only for full sets.
        Shape{ReplKind::Random, 1, true},
        Shape{ReplKind::Random, 2, true},
        Shape{ReplKind::Random, 4, true},
        Shape{ReplKind::Random, 8, true},
        Shape{ReplKind::Random, 16, true}),
    [](const ::testing::TestParamInfo<Shape> &info) {
        std::ostringstream os;
        os << toString(info.param.kind) << "_" << info.param.ways
           << "w";
        return os.str();
    });

/** The chunked controller replay path must also be step-identical to
 *  per-access replay at the tag level: access()+fill() driven through
 *  mixed probe orders keeps statistics consistent. */
TEST(PackedRepl, StatisticsMatchOracleCounts)
{
    const Shape shape{ReplKind::Lru, 4, true};
    const CacheConfig cfg = configOf(shape);
    TagArray dut(cfg);
    OracleTags oracle(cfg);

    c8t::trace::Rng rng(7);
    std::uint64_t hits = 0, misses = 0, evictions = 0;
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = oracle.layout().blockAddr(
            rng.below(12), rng.below(cfg.numSets()));
        if (dut.access(addr).hit) {
            ++hits;
            (void)oracle.access(addr);
        } else {
            ++misses;
            (void)oracle.access(addr);
            const FillResult f = dut.fill(addr);
            (void)oracle.fill(addr);
            if (f.evictedValid)
                ++evictions;
        }
    }
    EXPECT_EQ(dut.hits(), hits);
    EXPECT_EQ(dut.misses(), misses);
    EXPECT_EQ(dut.evictions(), evictions);
}

} // namespace
