/**
 * @file
 * Frame codec tests: round-trips, incremental decode, and the
 * protocol-robustness cases the daemon relies on — truncated frames,
 * oversized length prefixes, unknown type bytes (DESIGN.md §13).
 */

#include <string>

#include <gtest/gtest.h>

#include "net/frame.hh"

namespace
{

using namespace c8t;
using net::Frame;
using net::FrameReader;
using net::FrameType;

TEST(FrameTest, EncodeDecodeRoundTrip)
{
    const std::string payload = "{\"kind\":\"run\"}";
    const std::string bytes =
        net::encodeFrame(FrameType::Request, payload);
    ASSERT_EQ(bytes.size(), 5 + payload.size());
    EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]),
              static_cast<std::uint8_t>(FrameType::Request));

    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    ASSERT_TRUE(reader.next(f));
    EXPECT_EQ(f.type, FrameType::Request);
    EXPECT_EQ(f.payload, payload);
    EXPECT_FALSE(reader.next(f));
    EXPECT_FALSE(reader.inProgress());
}

TEST(FrameTest, EmptyPayloadAndEveryType)
{
    FrameReader reader;
    for (const FrameType t :
         {FrameType::Request, FrameType::Progress, FrameType::Partial,
          FrameType::Final, FrameType::Error}) {
        const std::string bytes = net::encodeFrame(t, "");
        reader.feed(bytes.data(), bytes.size());
        Frame f;
        ASSERT_TRUE(reader.next(f));
        EXPECT_EQ(f.type, t);
        EXPECT_TRUE(f.payload.empty());
    }
}

TEST(FrameTest, ByteAtATimeFeedDecodes)
{
    const std::string bytes =
        net::encodeFrame(FrameType::Final, "result body");
    FrameReader reader;
    Frame f;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        reader.feed(&bytes[i], 1);
        EXPECT_FALSE(reader.next(f));
        EXPECT_TRUE(reader.inProgress());
    }
    reader.feed(&bytes[bytes.size() - 1], 1);
    ASSERT_TRUE(reader.next(f));
    EXPECT_EQ(f.payload, "result body");
    EXPECT_FALSE(reader.inProgress());
}

TEST(FrameTest, PipelinedFramesDecodeInOrder)
{
    std::string bytes = net::encodeFrame(FrameType::Request, "one");
    bytes += net::encodeFrame(FrameType::Request, "two");
    bytes += net::encodeFrame(FrameType::Request, "three");
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    ASSERT_TRUE(reader.next(f));
    EXPECT_EQ(f.payload, "one");
    ASSERT_TRUE(reader.next(f));
    EXPECT_EQ(f.payload, "two");
    ASSERT_TRUE(reader.next(f));
    EXPECT_EQ(f.payload, "three");
    EXPECT_FALSE(reader.next(f));
}

TEST(FrameTest, TruncatedFrameIsInProgressNotAFrame)
{
    // Header promises 100 payload bytes; only 10 arrive before "EOF".
    const std::string bytes =
        net::encodeFrame(FrameType::Request, std::string(100, 'x'));
    FrameReader reader;
    reader.feed(bytes.data(), 15);
    Frame f;
    EXPECT_FALSE(reader.next(f));
    // The daemon uses exactly this signal to report a truncated
    // request at connection EOF.
    EXPECT_TRUE(reader.inProgress());
}

TEST(FrameTest, TruncatedHeaderIsInProgress)
{
    const std::string bytes = net::encodeFrame(FrameType::Request, "x");
    FrameReader reader;
    reader.feed(bytes.data(), 3); // half a header
    Frame f;
    EXPECT_FALSE(reader.next(f));
    EXPECT_TRUE(reader.inProgress());
}

TEST(FrameTest, OversizedLengthPrefixThrows)
{
    // 0xFFFFFFFF far exceeds the 64 MiB payload cap.
    const char bytes[5] = {1, '\xff', '\xff', '\xff', '\xff'};
    FrameReader reader;
    EXPECT_THROW(reader.feed(bytes, sizeof(bytes)),
                 net::ProtocolError);
}

TEST(FrameTest, JustOverTheCapThrowsJustUnderDoesNot)
{
    const std::uint32_t over = net::kMaxFramePayload + 1;
    char bytes[5];
    bytes[0] = 1;
    bytes[1] = static_cast<char>((over >> 24) & 0xff);
    bytes[2] = static_cast<char>((over >> 16) & 0xff);
    bytes[3] = static_cast<char>((over >> 8) & 0xff);
    bytes[4] = static_cast<char>(over & 0xff);
    FrameReader reader;
    EXPECT_THROW(reader.feed(bytes, sizeof(bytes)),
                 net::ProtocolError);

    const std::uint32_t cap = net::kMaxFramePayload;
    bytes[1] = static_cast<char>((cap >> 24) & 0xff);
    bytes[2] = static_cast<char>((cap >> 16) & 0xff);
    bytes[3] = static_cast<char>((cap >> 8) & 0xff);
    bytes[4] = static_cast<char>(cap & 0xff);
    FrameReader ok;
    EXPECT_NO_THROW(ok.feed(bytes, sizeof(bytes)));
    EXPECT_TRUE(ok.inProgress());
}

TEST(FrameTest, UnknownTypeByteThrows)
{
    const char bytes[5] = {42, 0, 0, 0, 0};
    FrameReader reader;
    EXPECT_THROW(reader.feed(bytes, sizeof(bytes)),
                 net::ProtocolError);
}

TEST(FrameTest, EncodeRejectsOversizedPayload)
{
    std::string huge;
    huge.resize(net::kMaxFramePayload + 1);
    EXPECT_THROW(net::encodeFrame(FrameType::Final, huge),
                 std::invalid_argument);
}

TEST(FrameTest, TypeNames)
{
    EXPECT_STREQ(net::toString(FrameType::Request), "request");
    EXPECT_STREQ(net::toString(FrameType::Progress), "progress");
    EXPECT_STREQ(net::toString(FrameType::Partial), "partial");
    EXPECT_STREQ(net::toString(FrameType::Final), "final");
    EXPECT_STREQ(net::toString(FrameType::Error), "error");
    EXPECT_TRUE(net::isFrameType(1));
    EXPECT_TRUE(net::isFrameType(5));
    EXPECT_FALSE(net::isFrameType(0));
    EXPECT_FALSE(net::isFrameType(6));
}

} // namespace
