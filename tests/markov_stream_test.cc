/**
 * @file
 * Tests for the calibrated Markov stream model: parameter validation,
 * determinism, and — the load-bearing property — that the measured
 * stream statistics converge to the configured targets.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/analyzer.hh"
#include "mem/addr.hh"
#include "trace/markov_stream.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace c8t::trace;
using c8t::core::StreamAnalyzer;
using c8t::mem::AddrLayout;

StreamParams
defaultParams()
{
    StreamParams p;
    p.name = "test";
    p.seed = 77;
    return p;
}

TEST(StreamParams, DefaultIsValid)
{
    EXPECT_NO_THROW(defaultParams().validate());
}

TEST(StreamParams, RejectsOutOfRangeProbability)
{
    StreamParams p = defaultParams();
    p.silentFraction = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = defaultParams();
    p.rr = -0.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(StreamParams, RejectsImpossiblePairShares)
{
    StreamParams p = defaultParams();
    // ww + wr exceeding the write share is unrealisable.
    p.readShare = 0.9;
    p.ww = 0.2;
    p.wr = 0.2;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(StreamParams, RejectsInfeasibleResidual)
{
    StreamParams p = defaultParams();
    // All writes are same-set writes: residual write probability < 0.
    p.readShare = 0.65;
    p.rr = 0.0;
    p.rw = 0.30;
    p.ww = 0.30;
    p.wr = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(StreamParams, RejectsTinyFootprint)
{
    StreamParams p = defaultParams();
    p.footprintBytes = 1024;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(StreamParams, DerivedQuantities)
{
    StreamParams p = defaultParams();
    EXPECT_NEAR(p.sameSetShare(), p.rr + p.rw + p.ww + p.wr, 1e-12);
    EXPECT_NEAR(p.writeShare(), 1.0 - p.readShare, 1e-12);
    const double w_star = p.diffSetWriteProb();
    EXPECT_GE(w_star, 0.0);
    EXPECT_LE(w_star, 1.0);
}

TEST(MarkovStream, DeterministicGivenSeed)
{
    MarkovStream a(defaultParams());
    MarkovStream b(defaultParams());
    const auto ta = collect(a, 5000);
    const auto tb = collect(b, 5000);
    EXPECT_EQ(ta, tb);
}

TEST(MarkovStream, ResetReplaysIdentically)
{
    MarkovStream g(defaultParams());
    const auto first = collect(g, 5000);
    g.reset();
    const auto second = collect(g, 5000);
    EXPECT_EQ(first, second);
}

TEST(MarkovStream, DifferentSeedsDiffer)
{
    StreamParams p1 = defaultParams();
    StreamParams p2 = defaultParams();
    p2.seed = p1.seed + 1;
    MarkovStream a(p1), b(p2);
    EXPECT_NE(collect(a, 1000), collect(b, 1000));
}

TEST(MarkovStream, AddressesAlignedAndSized)
{
    MarkovStream g(defaultParams());
    MemAccess a;
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(g.next(a));
        EXPECT_EQ(a.addr % 8, 0u);
        EXPECT_EQ(a.size, 8);
    }
}

TEST(MarkovStream, ShadowTracksWrites)
{
    MarkovStream g(defaultParams());
    MemAccess a;
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(g.next(a));
        if (a.isWrite()) {
            EXPECT_EQ(g.shadowValue(a.addr), a.data);
        }
    }
}

TEST(MarkovStream, SilentWritesStoreCurrentValue)
{
    // Every write either matches the shadow (silent) or updates it;
    // verified through the analyzer's independent shadow below.
    StreamParams p = defaultParams();
    p.silentFraction = 1.0; // all writes silent
    MarkovStream g(p);
    MemAccess a;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(g.next(a));
        if (a.isWrite()) {
            EXPECT_EQ(a.data, g.shadowValue(a.addr));
        }
    }
}

/**
 * The calibration property: measured statistics converge to targets.
 * Run over a few parameter corners.
 */
class Calibration : public ::testing::TestWithParam<StreamParams>
{};

TEST_P(Calibration, MeasuredStatisticsMatchTargets)
{
    const StreamParams p = GetParam();
    MarkovStream g(p);
    AddrLayout layout(static_cast<std::uint32_t>(refBlockBytes),
                      static_cast<std::uint32_t>(refSetCount));
    StreamAnalyzer an(layout);

    MemAccess a;
    const std::uint64_t n = 300'000;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(g.next(a));
        an.observe(a);
    }

    const double mem_frac =
        static_cast<double>(an.accesses()) / an.instructions();
    EXPECT_NEAR(mem_frac, p.memFraction, 0.01);
    EXPECT_NEAR(an.readInstrFraction() / mem_frac, p.readShare, 0.01);
    EXPECT_NEAR(an.rrShare(), p.rr, 0.01);
    EXPECT_NEAR(an.rwShare(), p.rw, 0.01);
    EXPECT_NEAR(an.wwShare(), p.ww, 0.01);
    EXPECT_NEAR(an.wrShare(), p.wr, 0.01);
    EXPECT_NEAR(an.silentWriteFraction(), p.silentFraction, 0.01);
}

StreamParams
corner(const char *name, double read_share, double rr, double rw,
       double ww, double wr, double silent)
{
    StreamParams p;
    p.name = name;
    p.readShare = read_share;
    p.rr = rr;
    p.rw = rw;
    p.ww = ww;
    p.wr = wr;
    p.silentFraction = silent;
    p.seed = 1234;
    return p;
}

INSTANTIATE_TEST_SUITE_P(
    Corners, Calibration,
    ::testing::Values(
        corner("balanced", 0.65, 0.12, 0.02, 0.10, 0.03, 0.42),
        corner("write_heavy", 0.56, 0.10, 0.02, 0.24, 0.03, 0.77),
        corner("read_heavy", 0.80, 0.25, 0.02, 0.05, 0.02, 0.30),
        corner("low_locality", 0.70, 0.03, 0.01, 0.02, 0.01, 0.10),
        corner("no_silent", 0.65, 0.12, 0.02, 0.10, 0.03, 0.0),
        corner("all_silent", 0.65, 0.12, 0.02, 0.10, 0.03, 1.0)),
    [](const auto &info) { return info.param.name; });

TEST(MarkovStream, SetReturnsDoNotDistortPairShares)
{
    // pWriteReturn/pReadReturn must be invisible to Figure 4.
    StreamParams lo = defaultParams();
    lo.pWriteReturn = 0.0;
    lo.pReadReturn = 0.0;
    StreamParams hi = defaultParams();
    hi.pWriteReturn = 0.6;
    hi.pReadReturn = 0.3;

    AddrLayout layout(32, 512);
    for (const auto &p : {lo, hi}) {
        MarkovStream g(p);
        StreamAnalyzer an(layout);
        MemAccess a;
        for (int i = 0; i < 200'000; ++i) {
            ASSERT_TRUE(g.next(a));
            an.observe(a);
        }
        EXPECT_NEAR(an.wwShare(), p.ww, 0.012);
        EXPECT_NEAR(an.rrShare(), p.rr, 0.012);
    }
}

} // anonymous namespace
