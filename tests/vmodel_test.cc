/**
 * @file
 * Property tests for the supply-voltage operating-point model
 * (sram/vmodel.hh, DESIGN.md §10).
 *
 * The three properties the rest of the stack leans on:
 *   - the nominal point is an *exact* identity (energy, leakage, delay
 *     and event rates bit-identical), so a model attached at nominal
 *     is indistinguishable from no model;
 *   - energy is monotonically non-increasing and failure probability
 *     monotonically non-decreasing as the supply drops;
 *   - the 8T cell's decoupled read stack keeps its min operational
 *     Vdd strictly below the 6T cell's for every array geometry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "sram/cell.hh"
#include "sram/energy.hh"
#include "sram/fault_injection.hh"
#include "sram/vmodel.hh"

namespace
{

using namespace c8t;
using sram::CellType;
using sram::FaultMapConfig;
using sram::VddModel;
using sram::VddModelParams;
using sram::VddPoint;

TEST(VddModel, NominalPointIsAnExactIdentity)
{
    const VddModel vm;
    const double nominal = vm.params().nominalVdd;

    EXPECT_EQ(vm.energyScale(nominal), 1.0);
    EXPECT_EQ(vm.leakageScale(nominal), 1.0);
    EXPECT_EQ(vm.delayFactor(nominal), 1.0);
    for (std::uint32_t cycles : {0u, 1u, 2u, 3u, 7u, 100u})
        EXPECT_EQ(vm.scaleCycles(cycles, nominal), cycles);

    // scaleRates at nominal must return the input bit for bit; the
    // controller's nominal-identity guarantee rests on this.
    const sram::EnergyModel em(sram::ArrayGeometry{256, 128, 4});
    const sram::EnergyEventRates in = em.eventRates(20, 4, 128);
    const sram::EnergyEventRates out = vm.scaleRates(in, nominal);
    EXPECT_EQ(std::memcmp(&in, &out, sizeof(in)), 0);
}

TEST(VddModel, GridIsDescendingFromNominal)
{
    const std::vector<double> grid = VddModel::defaultGrid();
    ASSERT_GE(grid.size(), 8u);
    EXPECT_EQ(grid.front(), VddModelParams{}.nominalVdd);
    EXPECT_EQ(grid.back(), 0.5);
    for (std::size_t i = 1; i < grid.size(); ++i)
        EXPECT_LT(grid[i], grid[i - 1]);
}

TEST(VddModel, EnergyNonIncreasingAndDelayNonDecreasingDownTheGrid)
{
    const VddModel vm;
    const std::vector<double> grid = VddModel::defaultGrid();
    for (std::size_t i = 1; i < grid.size(); ++i) {
        EXPECT_LT(vm.energyScale(grid[i]), vm.energyScale(grid[i - 1]))
            << grid[i];
        EXPECT_LT(vm.leakageScale(grid[i]),
                  vm.leakageScale(grid[i - 1]))
            << grid[i];
        EXPECT_GE(vm.delayFactor(grid[i]), vm.delayFactor(grid[i - 1]))
            << grid[i];
        EXPECT_GE(vm.scaleCycles(4, grid[i]),
                  vm.scaleCycles(4, grid[i - 1]))
            << grid[i];
    }
    // CV^2: the multiplier is exactly (v/vnom)^2.
    EXPECT_DOUBLE_EQ(vm.energyScale(0.5), 0.25);
}

TEST(VddModel, FailureProbabilityNonDecreasingDownTheGrid)
{
    const VddModel vm;
    const std::vector<double> grid = VddModel::defaultGrid();
    for (CellType cell : {CellType::SixT, CellType::EightT}) {
        VddPoint prev = vm.at(grid.front(), cell);
        for (std::size_t i = 1; i < grid.size(); ++i) {
            const VddPoint p = vm.at(grid[i], cell);
            EXPECT_GE(p.pfailRead, prev.pfailRead) << grid[i];
            EXPECT_GE(p.pfailWrite, prev.pfailWrite) << grid[i];
            EXPECT_GE(p.pfailCell, prev.pfailCell) << grid[i];
            EXPECT_GE(vm.wordFailureProbability(grid[i], cell),
                      vm.wordFailureProbability(grid[i - 1], cell))
                << grid[i];
            prev = p;
        }
    }
}

TEST(VddModel, EightTReadCurveIsFlatterThanSixT)
{
    const VddModel vm;
    for (double v : VddModel::defaultGrid()) {
        const VddPoint p6 = vm.at(v, CellType::SixT);
        const VddPoint p8 = vm.at(v, CellType::EightT);
        EXPECT_LE(p8.pfailRead, p6.pfailRead) << v;
        EXPECT_LE(p8.pfailCell, p6.pfailCell) << v;
    }
    // Below nominal the separation is strict: 6T read margin collapses
    // while the 8T read margin equals the hold margin.
    EXPECT_LT(vm.at(0.7, CellType::EightT).pfailRead,
              vm.at(0.7, CellType::SixT).pfailRead);
}

/**
 * Min operational Vdd over the default grid via the Monte-Carlo fault
 * maps: the lowest voltage whose post-SEC-DED word failure rate stays
 * under the threshold, scanning down from nominal and stopping at the
 * first non-operational point.
 */
double
minVddFor(CellType cell, std::uint32_t rows, std::uint32_t words,
          std::uint32_t degree, double threshold = 1e-3)
{
    const VddModel vm;
    double min_vdd = 0.0;
    for (double v : VddModel::defaultGrid()) {
        FaultMapConfig cfg;
        cfg.runSeed = 1;
        cfg.vdd = v;
        cfg.cell = cell;
        cfg.pfailCell = vm.at(v, cell).pfailCell;
        cfg.rows = rows;
        cfg.wordsPerRow = words;
        cfg.degree = degree;
        if (sram::runFaultMapCampaign(cfg).postEccFailureRate() >
            threshold)
            break;
        min_vdd = v;
    }
    return min_vdd;
}

TEST(VddModel, EightTMinVddStrictlyBelowSixTForEveryGeometry)
{
    // (rows, wordsPerRow, degree) matrix spanning the cache shapes the
    // sweeps use: 16-64 KB, direct to wide interleaving.
    struct Geometry { std::uint32_t rows, words, degree; };
    const std::vector<Geometry> matrix = {
        {256, 4, 1},  {512, 4, 4},   {1024, 16, 4},
        {1024, 8, 8}, {2048, 16, 4}, {512, 32, 4},
    };
    for (const Geometry &g : matrix) {
        const double v6 = minVddFor(CellType::SixT, g.rows, g.words,
                                    g.degree);
        const double v8 = minVddFor(CellType::EightT, g.rows, g.words,
                                    g.degree);
        EXPECT_GT(v6, 0.0) << g.rows << "x" << g.words;
        EXPECT_GT(v8, 0.0) << g.rows << "x" << g.words;
        EXPECT_LT(v8, v6) << g.rows << "x" << g.words << "/" << g.degree;
    }
}

TEST(VddModel, FaultMapsAreDeterministicAndSeedSensitive)
{
    const VddModel vm;
    FaultMapConfig cfg;
    cfg.vdd = 0.65;
    cfg.cell = CellType::EightT;
    cfg.pfailCell = vm.at(cfg.vdd, CellType::EightT).pfailCell;

    const sram::FaultMap a = sram::buildFaultMap(cfg);
    const sram::FaultMap b = sram::buildFaultMap(cfg);
    EXPECT_EQ(a.faultyCells, b.faultyCells);
    EXPECT_GT(a.faultyCells.size(), 0u);
    EXPECT_TRUE(
        std::is_sorted(a.faultyCells.begin(), a.faultyCells.end()));

    FaultMapConfig other = cfg;
    other.runSeed = 2;
    EXPECT_NE(sram::buildFaultMap(other).faultyCells, a.faultyCells);

    FaultMapConfig neighbour = cfg;
    neighbour.vdd = 0.60;
    neighbour.pfailCell = cfg.pfailCell; // same rate, different point
    EXPECT_NE(sram::buildFaultMap(neighbour).faultyCells,
              a.faultyCells);
}

TEST(VddModel, MonteCarloTracksTheAnalyticWordFailureRate)
{
    // At a voltage with a meaningful per-cell rate the sampled
    // post-ECC failure rate must land near the binomial prediction.
    const VddModel vm;
    const double v = 0.60;
    FaultMapConfig cfg;
    cfg.vdd = v;
    cfg.cell = CellType::EightT;
    cfg.pfailCell = vm.at(v, CellType::EightT).pfailCell;
    cfg.rows = 4096;
    cfg.wordsPerRow = 16;

    const double sampled =
        sram::runFaultMapCampaign(cfg).postEccFailureRate();
    const double analytic = vm.wordFailureProbability(v, cfg.cell);
    ASSERT_GT(analytic, 1e-4);
    EXPECT_NEAR(sampled, analytic, analytic * 0.5);
}

TEST(VddModel, ValidateRejectsNonPhysicalConstants)
{
    VddModelParams bad;
    bad.nominalVdd = 0.0;
    EXPECT_THROW(VddModel{bad}, std::invalid_argument);
    bad = VddModelParams{};
    bad.alpha = -1.0;
    EXPECT_THROW(VddModel{bad}, std::invalid_argument);
    bad = VddModelParams{};
    bad.leakDecayV = -1.0;
    EXPECT_THROW(VddModel{bad}, std::invalid_argument);
    bad = VddModelParams{};
    bad.clockGhz = 0.0;
    EXPECT_THROW(VddModel{bad}, std::invalid_argument);
    EXPECT_NO_THROW(VddModel{VddModelParams{}});
}

} // anonymous namespace
