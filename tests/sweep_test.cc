/**
 * @file
 * Tests for the parallel sweep engine: results must be bit-identical to
 * the legacy serial loop for every worker count, exceptions must
 * propagate, worker-count resolution must honour C8T_JOBS, and the
 * architectural memory-equivalence property must hold through the
 * parallel path exactly as it does serially.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::ControllerConfig;
using core::ParallelSweeper;
using core::RunConfig;
using core::SchemeRunResult;
using core::SweepJob;
using core::WriteScheme;

const std::vector<const char *> kProfiles = {"bwaves", "gamess", "mcf",
                                             "lbm",    "sjeng",  "sphinx3"};
const std::vector<WriteScheme> kSchemes = {
    WriteScheme::Rmw, WriteScheme::WriteGrouping,
    WriteScheme::WriteGroupingReadBypass};
constexpr RunConfig kRc{2'000, 10'000};

std::vector<ControllerConfig>
configsFor(const std::vector<WriteScheme> &schemes)
{
    std::vector<ControllerConfig> cfgs;
    for (WriteScheme s : schemes) {
        ControllerConfig c;
        c.scheme = s;
        cfgs.push_back(c);
    }
    return cfgs;
}

std::vector<SweepJob>
makeJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *name : kProfiles) {
        SweepJob job;
        job.makeGenerator = [name] {
            return std::make_unique<trace::MarkovStream>(
                trace::specProfile(name));
        };
        job.configs = configsFor(kSchemes);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** The historical serial loop, verbatim: one generator and one
 *  MultiSchemeRunner per profile, run back to back. */
std::vector<std::vector<SchemeRunResult>>
runSerialReference()
{
    std::vector<std::vector<SchemeRunResult>> out;
    for (const char *name : kProfiles) {
        trace::MarkovStream gen(trace::specProfile(name));
        core::MultiSchemeRunner runner(configsFor(kSchemes));
        out.push_back(runner.run(gen, kRc));
    }
    return out;
}

TEST(ParallelSweeper, BitIdenticalToSerialLoopForAnyWorkerCount)
{
    const auto reference = runSerialReference();
    for (unsigned workers : {1u, 2u, 8u}) {
        const ParallelSweeper sweeper(workers);
        EXPECT_EQ(sweeper.workers(), workers);
        const auto parallel = sweeper.run(makeJobs(), kRc, "test_sweep");
        ASSERT_EQ(parallel.size(), reference.size()) << workers;
        for (std::size_t p = 0; p < reference.size(); ++p) {
            ASSERT_EQ(parallel[p].size(), reference[p].size());
            for (std::size_t s = 0; s < reference[p].size(); ++s) {
                EXPECT_TRUE(parallel[p][s] == reference[p][s])
                    << workers << " workers, profile " << kProfiles[p]
                    << ", scheme " << reference[p][s].scheme;
            }
        }
    }
}

TEST(ParallelSweeper, RepeatedRunsAreBitIdentical)
{
    const ParallelSweeper sweeper(2);
    const auto first = sweeper.run(makeJobs(), kRc, "test_repeat");
    const auto second = sweeper.run(makeJobs(), kRc, "test_repeat");
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t p = 0; p < first.size(); ++p)
        EXPECT_TRUE(first[p] == second[p]) << kProfiles[p];
}

TEST(ParallelSweeper, JobExceptionsPropagateToCaller)
{
    std::vector<SweepJob> jobs = makeJobs();
    jobs[1].makeGenerator = []() -> std::unique_ptr<trace::AccessGenerator> {
        throw std::runtime_error("broken workload");
    };
    const ParallelSweeper sweeper(2);
    EXPECT_THROW(sweeper.run(jobs, kRc, "test_throw"), std::runtime_error);

    SweepJob empty;
    empty.makeGenerator = nullptr;
    EXPECT_THROW(ParallelSweeper(1).run({empty}, kRc),
                 std::invalid_argument);
}

TEST(ParallelSweeper, WorkerCountResolutionHonoursEnv)
{
    ::unsetenv("C8T_JOBS");
    const unsigned hw_default = ParallelSweeper::defaultWorkers();
    EXPECT_GE(hw_default, 1u);

    ::setenv("C8T_JOBS", "3", 1);
    EXPECT_EQ(ParallelSweeper::defaultWorkers(), 3u);
    EXPECT_EQ(ParallelSweeper().workers(), 3u);

    // Garbage, zero and out-of-range values fall back to the hardware
    // default instead of being half-parsed.
    for (const char *bad : {"abc", "3x", "0", "-2", "", "99999999"}) {
        ::setenv("C8T_JOBS", bad, 1);
        EXPECT_EQ(ParallelSweeper::defaultWorkers(), hw_default) << bad;
    }
    ::unsetenv("C8T_JOBS");

    // An explicit worker count always wins.
    ::setenv("C8T_JOBS", "7", 1);
    EXPECT_EQ(ParallelSweeper(2).workers(), 2u);
    ::unsetenv("C8T_JOBS");
}

TEST(ParallelSweeper, ProgressResolutionHonoursEnv)
{
    ::unsetenv("C8T_PROGRESS");
    EXPECT_FALSE(ParallelSweeper::defaultProgress());
    EXPECT_FALSE(ParallelSweeper(1).progress());

    ::setenv("C8T_PROGRESS", "1", 1);
    EXPECT_TRUE(ParallelSweeper::defaultProgress());
    EXPECT_TRUE(ParallelSweeper(1).progress());

    ::setenv("C8T_PROGRESS", "0", 1);
    EXPECT_FALSE(ParallelSweeper::defaultProgress());
    ::unsetenv("C8T_PROGRESS");

    ParallelSweeper s(1);
    s.setProgress(true);
    EXPECT_TRUE(s.progress());
}

TEST(ParallelSweeper, HeartbeatReportsCompletedJobs)
{
    ::unsetenv("C8T_PROGRESS");
    ParallelSweeper sweeper(2);
    sweeper.setProgress(true);

    testing::internal::CaptureStderr();
    sweeper.run(makeJobs(), kRc, "hb");
    const std::string err = testing::internal::GetCapturedStderr();

    // The final (never-throttled) line reports all jobs done.
    const std::string want = "[sweep hb] " +
                             std::to_string(kProfiles.size()) + "/" +
                             std::to_string(kProfiles.size()) + " jobs";
    EXPECT_NE(err.find(want), std::string::npos) << err;
    EXPECT_NE(err.find("acc/s"), std::string::npos) << err;

    // Off by default: a plain run stays silent.
    testing::internal::CaptureStderr();
    ParallelSweeper(2).run(makeJobs(), kRc, "quiet");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(ParallelSweeper, PrepareHookRunsBeforeTheRun)
{
    std::vector<SweepJob> jobs = makeJobs();
    std::vector<std::uint64_t> requests_at_prepare(jobs.size(), 1);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].prepare = [&requests_at_prepare,
                           i](core::MultiSchemeRunner &r) {
            requests_at_prepare[i] = r.controller(0).requests();
        };
    }
    ParallelSweeper(2).run(jobs, kRc, "prepare");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(requests_at_prepare[i], 0u) << i;
}

TEST(ParallelSweeper, SpecSweepJobsCoverEveryProfile)
{
    const auto jobs = core::specSweepJobs(mem::CacheConfig{}, kSchemes);
    EXPECT_EQ(jobs.size(), trace::specProfiles().size());
    for (const auto &job : jobs) {
        EXPECT_TRUE(static_cast<bool>(job.makeGenerator));
        EXPECT_EQ(job.configs.size(), kSchemes.size());
    }
}

/**
 * The WG / WG+RB vs RMW memory-state equivalence property, run through
 * the parallel engine: after drain + flush, every written word must
 * equal the generator's architectural shadow value under every scheme.
 * State is captured on the worker thread via the inspect hook and
 * asserted on the main thread (the join provides the happens-before).
 */
class ParallelEquivalence : public ::testing::TestWithParam<const char *>
{};

TEST_P(ParallelEquivalence, MemoryStateMatchesShadowThroughParallelPath)
{
    // Oracle: replay the stream once to learn the written words and the
    // final architectural values.
    trace::MarkovStream oracle(trace::specProfile(GetParam()));
    trace::MemAccess a;
    std::set<std::uint64_t> written;
    for (std::uint64_t i = 0; i < kRc.warmupAccesses + kRc.measureAccesses;
         ++i) {
        ASSERT_TRUE(oracle.next(a));
        if (a.isWrite())
            written.insert(a.addr & ~7ull);
    }

    // Two identical jobs so the 2-worker pool actually runs threaded;
    // each captures every controller's post-flush view of the words.
    const char *name = GetParam();
    std::vector<std::vector<std::vector<std::uint64_t>>> captured(2);
    std::vector<SweepJob> jobs(2);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        jobs[j].makeGenerator = [name] {
            return std::make_unique<trace::MarkovStream>(
                trace::specProfile(name));
        };
        jobs[j].configs = configsFor(kSchemes);
        jobs[j].inspect = [&captured, &written,
                           j](core::MultiSchemeRunner &runner) {
            captured[j].resize(runner.controllers());
            for (std::size_t c = 0; c < runner.controllers(); ++c) {
                runner.controller(c).flushCacheToMemory();
                for (const std::uint64_t addr : written)
                    captured[j][c].push_back(
                        runner.controller(c).peekWord(addr));
            }
        };
    }
    const auto results = ParallelSweeper(2).run(jobs, kRc, "test_equiv");
    ASSERT_EQ(results.size(), 2u);

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        ASSERT_EQ(captured[j].size(), kSchemes.size());
        for (std::size_t c = 0; c < kSchemes.size(); ++c) {
            std::size_t w = 0;
            for (const std::uint64_t addr : written) {
                ASSERT_EQ(captured[j][c][w], oracle.shadowValue(addr))
                    << "job " << j << ", scheme " << results[j][c].scheme
                    << ", word 0x" << std::hex << addr;
                ++w;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ParallelEquivalence,
                         ::testing::Values("bwaves", "mcf", "sphinx3"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

} // anonymous namespace
