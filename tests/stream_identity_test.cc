/**
 * @file
 * Stream-identity guarantees behind the batched/memoized fast path.
 *
 * The chunked runner and the cross-job stream cache are pure
 * performance mechanisms: they must be invisible in every result.
 * This suite pins the three layers of that argument:
 *
 *  1. fillChunk() produces byte-identical MemAccess sequences to
 *     repeated next() for every calibrated SPEC profile and every
 *     kernel (including end-of-stream behaviour), across awkward
 *     chunk sizes.
 *  2. ReplayGenerator replays a captured buffer byte-identically, and
 *     StreamCache hit/miss/bypass/eviction behaviour is observable
 *     and bounded by its byte budget.
 *  3. ParallelSweeper results are bit-identical with the cache
 *     enabled vs disabled, for 1/2/8 workers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "core/stream_cache.hh"
#include "core/sweep.hh"
#include "trace/kernels.hh"
#include "trace/markov_stream.hh"
#include "trace/replay.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::StreamCache;
using trace::AccessGenerator;
using trace::MemAccess;

/** Drain @p n accesses via next(). */
std::vector<MemAccess>
collectNext(AccessGenerator &gen, std::size_t n)
{
    std::vector<MemAccess> out;
    out.reserve(n);
    MemAccess a;
    while (out.size() < n && gen.next(a))
        out.push_back(a);
    return out;
}

/** Drain @p n accesses via fillChunk() with rotating odd sizes. */
std::vector<MemAccess>
collectChunked(AccessGenerator &gen, std::size_t n)
{
    // Deliberately awkward chunk sizes: prime, one, large, and a
    // power of two, so chunk boundaries land everywhere.
    const std::size_t sizes[] = {7, 1, 613, 4096, 64};
    std::vector<MemAccess> out(n);
    std::size_t filled = 0;
    std::size_t turn = 0;
    while (filled < n) {
        const std::size_t want =
            std::min(sizes[turn++ % std::size(sizes)], n - filled);
        const std::size_t got = gen.fillChunk(out.data() + filled, want);
        filled += got;
        if (got < want)
            break;
    }
    out.resize(filled);
    return out;
}

class SpecStreamIdentity
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(SpecStreamIdentity, FillChunkMatchesNext)
{
    const trace::StreamParams p = trace::specProfile(GetParam());
    trace::MarkovStream by_next(p);
    trace::MarkovStream by_chunk(p);

    constexpr std::size_t kAccesses = 20'000;
    const auto a = collectNext(by_next, kAccesses);
    const auto b = collectChunked(by_chunk, kAccesses);
    ASSERT_EQ(a.size(), kAccesses);
    ASSERT_EQ(b.size(), kAccesses);
    for (std::size_t i = 0; i < kAccesses; ++i)
        ASSERT_TRUE(a[i] == b[i]) << GetParam() << " access " << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, SpecStreamIdentity,
    ::testing::ValuesIn(trace::specBenchmarkNames()),
    [](const auto &info) { return info.param; });

/** Kernel factories, each small enough to run to exhaustion. */
std::vector<std::unique_ptr<AccessGenerator>>
makeKernels()
{
    std::vector<std::unique_ptr<AccessGenerator>> v;
    v.push_back(std::make_unique<trace::StreamCopyKernel>(1'000, 3));
    v.push_back(std::make_unique<trace::StencilKernel>(500, 2));
    v.push_back(std::make_unique<trace::PointerChaseKernel>(256, 5'000));
    v.push_back(
        std::make_unique<trace::HashUpdateKernel>(512, 4'000, 0.3, 0.8));
    v.push_back(std::make_unique<trace::FillKernel>(1'500, 3));
    v.push_back(std::make_unique<trace::TransposeKernel>(64, 8));
    return v;
}

TEST(KernelStreamIdentity, FillChunkMatchesNextToExhaustion)
{
    auto by_next = makeKernels();
    auto by_chunk = makeKernels();
    for (std::size_t k = 0; k < by_next.size(); ++k) {
        // Ask for more than the kernels produce so both paths hit the
        // end of the stream.
        constexpr std::size_t kMoreThanAny = 1'000'000;
        const auto a = collectNext(*by_next[k], kMoreThanAny);
        const auto b = collectChunked(*by_chunk[k], kMoreThanAny);
        ASSERT_LT(a.size(), kMoreThanAny) << by_next[k]->name();
        ASSERT_EQ(a.size(), b.size()) << by_next[k]->name();
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_TRUE(a[i] == b[i])
                << by_next[k]->name() << " access " << i;

        // Exhausted generators keep reporting end-of-stream.
        MemAccess scratch;
        EXPECT_EQ(by_chunk[k]->fillChunk(&scratch, 1), 0u);
        EXPECT_FALSE(by_next[k]->next(scratch));
    }
}

TEST(ReplayGenerator, ReplaysBufferByteIdentically)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    constexpr std::size_t kAccesses = 5'000;
    auto buffer = std::make_shared<std::vector<MemAccess>>(kAccesses);
    ASSERT_EQ(gen.fillChunk(buffer->data(), kAccesses), kAccesses);

    trace::ReplayGenerator replay("gcc", buffer);
    EXPECT_EQ(replay.name(), "gcc");
    EXPECT_EQ(replay.size(), kAccesses);

    const auto via_next = collectNext(replay, kAccesses + 10);
    ASSERT_EQ(via_next.size(), kAccesses);
    for (std::size_t i = 0; i < kAccesses; ++i)
        ASSERT_TRUE(via_next[i] == (*buffer)[i]) << i;

    // reset() rewinds to the exact same stream; chunked reads agree.
    replay.reset();
    EXPECT_EQ(replay.remaining(), kAccesses);
    const auto via_chunk = collectChunked(replay, kAccesses + 10);
    ASSERT_EQ(via_chunk.size(), kAccesses);
    for (std::size_t i = 0; i < kAccesses; ++i)
        ASSERT_TRUE(via_chunk[i] == (*buffer)[i]) << i;

    EXPECT_THROW(trace::ReplayGenerator("x", nullptr),
                 std::invalid_argument);
}

TEST(StreamSignature, DistinguishesEveryProfileAndSeed)
{
    std::vector<std::string> sigs;
    for (const auto &p : trace::specProfiles())
        sigs.push_back(trace::streamSignature(p));
    for (std::size_t i = 0; i < sigs.size(); ++i)
        for (std::size_t j = i + 1; j < sigs.size(); ++j)
            EXPECT_NE(sigs[i], sigs[j]);

    trace::StreamParams p = trace::specProfile("gcc");
    const std::string base = trace::streamSignature(p);
    EXPECT_EQ(base, trace::streamSignature(p));
    p.seed ^= 1;
    EXPECT_NE(base, trace::streamSignature(p));
    p = trace::specProfile("gcc");
    p.silentFraction += 1e-9;
    EXPECT_NE(base, trace::streamSignature(p));
}

StreamCache::GeneratorFactory
gccFactory()
{
    return [] {
        return std::make_unique<trace::MarkovStream>(
            trace::specProfile("gcc"));
    };
}

TEST(StreamCacheBehaviour, HitMissBypassAndBudget)
{
    StreamCache cache(64u << 20);
    EXPECT_TRUE(cache.enabled());

    constexpr std::uint64_t kAccesses = 10'000;
    auto first = cache.acquire("gcc", kAccesses, gccFactory());
    auto second = cache.acquire("gcc", kAccesses, gccFactory());
    const StreamCache::Stats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.bytes, kAccesses * sizeof(MemAccess));

    // Both must replay the byte-identical stream a live generator
    // produces.
    trace::MarkovStream live(trace::specProfile("gcc"));
    const auto want = collectNext(live, kAccesses);
    const auto got1 = collectNext(*first, kAccesses);
    const auto got2 = collectChunked(*second, kAccesses);
    ASSERT_EQ(got1.size(), want.size());
    ASSERT_EQ(got2.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_TRUE(got1[i] == want[i]) << i;
        ASSERT_TRUE(got2[i] == want[i]) << i;
    }
    EXPECT_EQ(first->name(), "gcc");

    // A request that alone exceeds the budget bypasses the cache and
    // returns the factory's live generator.
    StreamCache tiny(1024);
    auto bypassed = tiny.acquire("gcc", kAccesses, gccFactory());
    EXPECT_EQ(tiny.stats().bypasses, 1u);
    EXPECT_EQ(tiny.stats().entries, 0u);
    EXPECT_NE(dynamic_cast<trace::MarkovStream *>(bypassed.get()),
              nullptr);

    // Budget 0 disables caching entirely.
    StreamCache off(0);
    EXPECT_FALSE(off.enabled());
    auto uncached = off.acquire("gcc", kAccesses, gccFactory());
    EXPECT_EQ(off.stats().bypasses, 1u);
    EXPECT_NE(dynamic_cast<trace::MarkovStream *>(uncached.get()),
              nullptr);
}

TEST(StreamCacheBehaviour, EvictsLeastRecentlyUsedToFitBudget)
{
    constexpr std::uint64_t kAccesses = 1'000;
    constexpr std::size_t kStreamBytes = kAccesses * sizeof(MemAccess);
    // Room for two streams, not three.
    StreamCache cache(2 * kStreamBytes);

    auto a = cache.acquire("a", kAccesses, gccFactory());
    auto b = cache.acquire("b", kAccesses, gccFactory());
    EXPECT_EQ(cache.stats().entries, 2u);

    // Touch "a" so "b" becomes the LRU victim when "c" arrives.
    a = cache.acquire("a", kAccesses, gccFactory());
    auto c = cache.acquire("c", kAccesses, gccFactory());
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // "a" must still hit; "b" was evicted and misses again.
    cache.acquire("a", kAccesses, gccFactory());
    EXPECT_EQ(cache.stats().hits, 2u);
    cache.acquire("b", kAccesses, gccFactory());
    EXPECT_EQ(cache.stats().misses, 4u);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(StreamCacheBehaviour, ShorterBufferIsRegeneratedForLongerRequest)
{
    StreamCache cache(64u << 20);
    auto short_run = cache.acquire("gcc", 1'000, gccFactory());
    auto long_run = cache.acquire("gcc", 5'000, gccFactory());
    EXPECT_EQ(cache.stats().misses, 2u);

    // The regenerated buffer serves the longer window identically to
    // a live generator.
    trace::MarkovStream live(trace::specProfile("gcc"));
    const auto want = collectNext(live, 5'000);
    const auto got = collectNext(*long_run, 5'000);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_TRUE(got[i] == want[i]) << i;

    // An exhausted stream satisfies any longer request: the replay
    // ends exactly where the live generator would.
    auto kernel_factory = []() -> std::unique_ptr<AccessGenerator> {
        return std::make_unique<trace::StreamCopyKernel>(100, 1);
    };
    auto k1 = cache.acquire("kernel", 1'000'000, kernel_factory);
    auto k2 = cache.acquire("kernel", 2'000'000, kernel_factory);
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().hits, 1u);
    trace::StreamCopyKernel live_kernel(100, 1);
    const auto kernel_want = collectNext(live_kernel, 2'000'000);
    const auto kernel_got = collectNext(*k2, 2'000'000);
    ASSERT_EQ(kernel_got.size(), kernel_want.size());

    EXPECT_THROW(cache.acquire("", 10, gccFactory()),
                 std::invalid_argument);
    EXPECT_THROW(cache.acquire("x", 10, nullptr), std::invalid_argument);
}

TEST(ChunkedRunner, IntervalHookFiresOnTheExactGrid)
{
    // An interval that divides neither the chunk size nor the window:
    // the chunked runner must still fire at exact multiples, exactly
    // as the historical per-access loop did.
    std::vector<core::ControllerConfig> cfgs(1);
    core::MultiSchemeRunner runner(cfgs);
    std::vector<std::uint64_t> fired;
    runner.setIntervalHook(777, [&fired](std::uint64_t at) {
        fired.push_back(at);
    });

    trace::MarkovStream gen(trace::specProfile("gcc"));
    const core::RunConfig rc{1'000, 10'000};
    runner.run(gen, rc);

    ASSERT_EQ(fired.size(), 10'000u / 777u);
    for (std::size_t i = 0; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], (i + 1) * 777u);
}

/** Jobs over a few profiles with stream keys set (the specSweepJobs
 *  shape, shrunk for test time). */
std::vector<core::SweepJob>
keyedJobs()
{
    const std::vector<core::WriteScheme> schemes = {
        core::WriteScheme::Rmw,
        core::WriteScheme::WriteGroupingReadBypass};
    std::vector<core::SweepJob> jobs;
    for (const char *name : {"bwaves", "mcf", "sphinx3"}) {
        const trace::StreamParams p = trace::specProfile(name);
        core::SweepJob job;
        job.makeGenerator = [p] {
            return std::make_unique<trace::MarkovStream>(p);
        };
        job.streamKey = trace::streamSignature(p);
        for (core::WriteScheme s : schemes) {
            core::ControllerConfig c;
            c.scheme = s;
            job.configs.push_back(c);
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(SweepWithStreamCache, CacheOnOffBitIdenticalForAnyWorkerCount)
{
    const core::RunConfig rc{2'000, 10'000};
    StreamCache &cache = core::globalStreamCache();
    const std::size_t original_budget = cache.byteBudget();

    // Reference: cache disabled, serial.
    cache.setByteBudget(0);
    const auto reference =
        core::ParallelSweeper(1).run(keyedJobs(), rc, "id_off");

    cache.setByteBudget(512u << 20);
    cache.clear();
    for (unsigned workers : {1u, 2u, 8u}) {
        const auto cached =
            core::ParallelSweeper(workers).run(keyedJobs(), rc, "id_on");
        ASSERT_EQ(cached.size(), reference.size()) << workers;
        for (std::size_t p = 0; p < reference.size(); ++p) {
            ASSERT_EQ(cached[p].size(), reference[p].size());
            for (std::size_t s = 0; s < reference[p].size(); ++s) {
                EXPECT_TRUE(cached[p][s] == reference[p][s])
                    << workers << " workers, job " << p << ", scheme "
                    << reference[p][s].scheme;
            }
        }
    }
    // Every rerun after the first hits the cache instead of
    // regenerating.
    EXPECT_GE(cache.stats().hits, 6u);

    cache.setByteBudget(original_budget);
    cache.clear();
}

} // anonymous namespace
