/**
 * @file
 * obs::Histogram: bucket boundaries, exact counts, quantile bounds.
 */

#include "obs/histogram.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace
{

using c8t::obs::Histogram;

TEST(Histogram, SmallValuesGetExactUnitBuckets)
{
    for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), v);
        EXPECT_EQ(Histogram::bucketLowerBound(v), v);
        EXPECT_EQ(Histogram::bucketUpperBound(v), v);
    }
    // The first octave is still exact: [16,32) maps one value per
    // bucket, continuing the index sequence without a gap.
    for (std::uint64_t v = 16; v < 32; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), v);
        EXPECT_EQ(Histogram::bucketLowerBound(v), v);
        EXPECT_EQ(Histogram::bucketUpperBound(v), v);
    }
}

TEST(Histogram, BucketIndexIsMonotoneAndContiguousAtBoundaries)
{
    // Every bucket's bounds must invert back to its own index and
    // chain seamlessly to the next bucket's lower bound.
    for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
        const std::uint64_t lo = Histogram::bucketLowerBound(i);
        const std::uint64_t hi = Histogram::bucketUpperBound(i);
        ASSERT_EQ(Histogram::bucketIndex(lo), i) << "lo of bucket " << i;
        ASSERT_EQ(Histogram::bucketIndex(hi), i) << "hi of bucket " << i;
        ASSERT_EQ(hi + 1, Histogram::bucketLowerBound(i + 1))
            << "gap after bucket " << i;
    }
    EXPECT_EQ(
        Histogram::bucketIndex(std::numeric_limits<std::uint64_t>::max()),
        Histogram::kBuckets - 1);
}

TEST(Histogram, RelativeBucketWidthIsBounded)
{
    // HDR guarantee: width/lower <= 1/16 above the exact region.
    for (std::size_t i = Histogram::kSubBuckets;
         i + 1 < Histogram::kBuckets; ++i) {
        const std::uint64_t lo = Histogram::bucketLowerBound(i);
        const std::uint64_t width =
            Histogram::bucketUpperBound(i) - lo + 1;
        EXPECT_LE(width * Histogram::kSubBuckets, lo)
            << "bucket " << i << " too wide";
    }
}

TEST(Histogram, CountsSumMinMaxAreExact)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);

    std::uint64_t sum = 0;
    for (std::uint64_t v = 0; v < 1000; ++v) {
        h.record(v * v);
        sum += v * v;
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.sum(), sum);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 999u * 999u);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 1000.0);

    // Per-bucket counts reconcile with the total.
    std::uint64_t bucketed = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
        bucketed += h.bucketCount(i);
    EXPECT_EQ(bucketed, h.count());

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ExactQuantilesInTheUnitRegion)
{
    // All values < 16 live in exact buckets, so quantiles are exact.
    Histogram h;
    for (std::uint64_t v = 1; v <= 10; ++v)
        h.record(v);
    EXPECT_EQ(h.quantile(0.1), 1u);
    EXPECT_EQ(h.quantile(0.5), 5u);
    EXPECT_EQ(h.quantile(0.9), 9u);
    EXPECT_EQ(h.quantile(1.0), 10u);
}

TEST(Histogram, QuantileIsUpperBoundWithinOneSixteenth)
{
    // Against a sorted reference: the reported quantile must be >=
    // the true order statistic and within the bucket's relative
    // error of it.
    std::mt19937_64 rng(42);
    std::vector<std::uint64_t> values;
    Histogram h;
    for (int i = 0; i < 10000; ++i) {
        // Spread over ~6 decades so many octaves participate.
        const std::uint64_t v =
            (rng() % 1000000) * ((rng() % 1000) + 1);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        const std::uint64_t exact = values[rank - 1];
        const std::uint64_t approx = h.quantile(q);
        EXPECT_GE(approx, exact) << "q=" << q;
        // Upper bucket bound overshoots by < 1/16 of the value (+1
        // for the integer bucket edge).
        EXPECT_LE(approx, exact + exact / 16 + 1) << "q=" << q;
    }
    EXPECT_EQ(h.quantile(1.0), values.back());
}

TEST(Histogram, MaxClampsTailQuantiles)
{
    Histogram h;
    h.record(1'000'000'007);
    EXPECT_EQ(h.quantile(0.5), 1'000'000'007u);
    EXPECT_EQ(h.quantile(0.99), 1'000'000'007u);
    EXPECT_EQ(h.max(), 1'000'000'007u);
}

} // namespace
