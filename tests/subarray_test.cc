/**
 * @file
 * Unit tests for the sub-array conflict model (the Park et al.
 * LocalRMW mechanism).
 */

#include <gtest/gtest.h>

#include "sram/subarray.hh"

namespace
{

using namespace c8t::sram;

TEST(Subarray, StyleNames)
{
    EXPECT_STREQ(toString(WriteStyle::GlobalRmw), "global_rmw");
    EXPECT_STREQ(toString(WriteStyle::LocalRmw), "local_rmw");
    EXPECT_STREQ(toString(WriteStyle::BufferedWriteback),
                 "buffered_writeback");
}

TEST(Subarray, PartitionArithmetic)
{
    SubarrayModel m(512, 128, WriteStyle::LocalRmw);
    EXPECT_EQ(m.subarrays(), 4u);
    EXPECT_EQ(m.subarrayOf(0), 0u);
    EXPECT_EQ(m.subarrayOf(127), 0u);
    EXPECT_EQ(m.subarrayOf(128), 1u);
    EXPECT_EQ(m.subarrayOf(511), 3u);
}

TEST(Subarray, RoundsUpPartitionCount)
{
    SubarrayModel m(100, 64, WriteStyle::LocalRmw);
    EXPECT_EQ(m.subarrays(), 2u);
}

TEST(Subarray, GlobalRmwBlocksEveryRead)
{
    SubarrayModel m(512, 128, WriteStyle::GlobalRmw);
    m.write(10, 0, 4);
    // A read to a *different* sub-array is still blocked.
    EXPECT_EQ(m.read(400, 1), 4u);
    EXPECT_EQ(m.blockedReads(), 1u);
    EXPECT_EQ(m.blockedCycles(), 3u);
}

TEST(Subarray, LocalRmwBlocksOnlyTheTargetSubarray)
{
    SubarrayModel m(512, 128, WriteStyle::LocalRmw);
    m.write(10, 0, 4); // sub-array 0 busy until 4
    EXPECT_EQ(m.read(400, 1), 1u); // sub-array 3: unblocked
    EXPECT_EQ(m.read(20, 1), 4u);  // sub-array 0: blocked
    EXPECT_EQ(m.blockedReads(), 1u);
    EXPECT_EQ(m.reads(), 2u);
}

TEST(Subarray, BufferedWritebackNeverBlocks)
{
    SubarrayModel m(512, 128, WriteStyle::BufferedWriteback);
    m.write(10, 0, 100);
    EXPECT_EQ(m.read(10, 1), 1u); // even the same sub-array
    EXPECT_EQ(m.blockedReads(), 0u);
}

TEST(Subarray, ReadAfterWriteWindowUnblocked)
{
    SubarrayModel m(512, 128, WriteStyle::GlobalRmw);
    m.write(10, 0, 4);
    EXPECT_EQ(m.read(10, 10), 10u);
    EXPECT_EQ(m.blockedReads(), 0u);
}

TEST(Subarray, OverlappingWritesExtendTheWindow)
{
    SubarrayModel m(512, 128, WriteStyle::LocalRmw);
    m.write(10, 0, 4);
    m.write(20, 2, 4); // same sub-array, busy until 6
    EXPECT_EQ(m.read(30, 1), 6u);
}

TEST(Subarray, ConflictOrderingAcrossStyles)
{
    // For any common write/read pattern: blocked(global) >=
    // blocked(local) >= blocked(buffered).
    SubarrayModel g(512, 128, WriteStyle::GlobalRmw);
    SubarrayModel l(512, 128, WriteStyle::LocalRmw);
    SubarrayModel b(512, 128, WriteStyle::BufferedWriteback);

    std::uint64_t t = 0;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        const std::uint32_t wrow = (i * 37) % 512;
        const std::uint32_t rrow = (i * 151) % 512;
        for (auto *m : {&g, &l, &b}) {
            m->write(wrow, t, 4);
            m->read(rrow, t + 1);
        }
        t += 3;
    }
    EXPECT_GE(g.blockedReads(), l.blockedReads());
    EXPECT_GE(l.blockedReads(), b.blockedReads());
    EXPECT_EQ(b.blockedReads(), 0u);
    EXPECT_GT(g.blockedReads(), 0u);
}

} // anonymous namespace
