/**
 * @file
 * Unit tests for the cache controller: exact demand-access accounting
 * per scheme on hand-built streams, Algorithm 1 behaviour, and data
 * correctness of every path.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controller.hh"

namespace
{

using namespace c8t::core;
using c8t::mem::FunctionalMemory;
using c8t::trace::AccessType;
using c8t::trace::MemAccess;

MemAccess
readAcc(std::uint64_t addr)
{
    MemAccess a;
    a.addr = addr;
    return a;
}

MemAccess
writeAcc(std::uint64_t addr, std::uint64_t data)
{
    MemAccess a;
    a.addr = addr;
    a.type = AccessType::Write;
    a.data = data;
    return a;
}

class ControllerTest : public ::testing::Test
{
  protected:
    CacheController
    make(WriteScheme scheme, std::uint32_t buffer_entries = 1)
    {
        ControllerConfig cfg;
        cfg.scheme = scheme;
        cfg.bufferEntries = buffer_entries;
        return CacheController(cfg, mem);
    }

    FunctionalMemory mem;

    // Three addresses in three distinct sets of the baseline cache.
    static constexpr std::uint64_t addrA = 0x10000;
    static constexpr std::uint64_t addrB = 0x10040;
    static constexpr std::uint64_t addrC = 0x10080;
};

TEST_F(ControllerTest, RejectsZeroBufferEntries)
{
    ControllerConfig cfg;
    cfg.bufferEntries = 0;
    EXPECT_THROW(CacheController(cfg, mem), std::invalid_argument);
}

TEST_F(ControllerTest, SixTReadWriteCosts)
{
    auto c = make(WriteScheme::SixTDirect);
    c.access(readAcc(addrA));  // miss + 1 demand read
    c.access(writeAcc(addrA, 1)); // 1 demand write
    EXPECT_EQ(c.demandRowReads(), 1u);
    EXPECT_EQ(c.demandRowWrites(), 1u);
    EXPECT_EQ(c.fillRowReads(), 1u);
    EXPECT_EQ(c.fillRowWrites(), 1u);
}

TEST_F(ControllerTest, RmwWriteCostsReadPlusWrite)
{
    auto c = make(WriteScheme::Rmw);
    c.access(readAcc(addrA)); // warm the block
    c.resetStats();

    c.access(writeAcc(addrA, 1));
    EXPECT_EQ(c.demandRowReads(), 1u);
    EXPECT_EQ(c.demandRowWrites(), 1u);

    c.access(writeAcc(addrA, 2));
    EXPECT_EQ(c.demandRowReads(), 2u);
    EXPECT_EQ(c.demandRowWrites(), 2u);
}

TEST_F(ControllerTest, RmwAccessInflationMatchesWriteShare)
{
    // The paper's claim in miniature: RMW total = reads + 2*writes.
    auto c = make(WriteScheme::Rmw);
    c.access(readAcc(addrA));
    c.access(readAcc(addrB));
    c.resetStats();

    for (int i = 0; i < 10; ++i)
        c.access(readAcc(addrA));
    for (int i = 0; i < 5; ++i)
        c.access(writeAcc(addrB, i + 100));
    EXPECT_EQ(c.demandAccesses(), 10u + 2u * 5u);
}

TEST_F(ControllerTest, WgGroupsConsecutiveSameSetWrites)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(readAcc(addrA));
    c.resetStats();

    c.access(writeAcc(addrA, 1)); // opens the group: 1 read
    EXPECT_EQ(c.demandRowReads(), 1u);
    EXPECT_EQ(c.demandRowWrites(), 0u);

    c.access(writeAcc(addrA, 2)); // grouped: free
    c.access(writeAcc(addrA + 8, 3)); // same block, other word: free
    EXPECT_EQ(c.demandAccesses(), 1u);
    EXPECT_EQ(c.groupedWrites(), 2u);
}

TEST_F(ControllerTest, WgWriteToNewSetEndsGroup)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(readAcc(addrA));
    c.access(readAcc(addrB));
    c.resetStats();

    c.access(writeAcc(addrA, 1)); // group A: 1 read
    c.access(writeAcc(addrB, 2)); // ends A (dirty): 1 write + 1 read
    EXPECT_EQ(c.demandRowReads(), 2u);
    EXPECT_EQ(c.demandRowWrites(), 1u);
    EXPECT_EQ(c.groupWritebacks(), 1u);
}

TEST_F(ControllerTest, WgSilentGroupElidesWriteback)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(readAcc(addrA));
    c.access(readAcc(addrB));
    c.resetStats();

    // Memory is zeroed, so writing 0 is silent.
    c.access(writeAcc(addrA, 0));
    EXPECT_EQ(c.silentWritesDetected(), 1u);

    c.access(writeAcc(addrB, 2)); // ends A's group — clean, elided
    EXPECT_EQ(c.silentGroupsElided(), 1u);
    EXPECT_EQ(c.demandRowWrites(), 0u);
    EXPECT_EQ(c.demandRowReads(), 2u); // the two group-opening reads
}

TEST_F(ControllerTest, WgSilentDetectionCanBeDisabled)
{
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGrouping;
    cfg.silentDetection = false;
    CacheController c(cfg, mem);
    c.access(readAcc(addrA));
    c.access(readAcc(addrB));
    c.resetStats();

    c.access(writeAcc(addrA, 0)); // silent, but detection is off
    c.access(writeAcc(addrB, 2));
    EXPECT_EQ(c.silentWritesDetected(), 0u);
    EXPECT_EQ(c.silentGroupsElided(), 0u);
    EXPECT_EQ(c.demandRowWrites(), 1u); // write-back not elided
}

TEST_F(ControllerTest, WgReadHitForcesPrematureWriteback)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(readAcc(addrA));
    c.resetStats();

    c.access(writeAcc(addrA, 1)); // 1 read (group open)
    const AccessOutcome out = c.access(readAcc(addrA));
    EXPECT_TRUE(out.tagBufferHit);
    EXPECT_FALSE(out.bypassed); // plain WG never bypasses
    EXPECT_EQ(c.prematureWritebacks(), 1u);
    EXPECT_EQ(c.demandRowReads(), 2u);
    EXPECT_EQ(c.demandRowWrites(), 1u);
}

TEST_F(ControllerTest, WgCleanReadHitSkipsWriteback)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(readAcc(addrA));
    c.resetStats();

    c.access(writeAcc(addrA, 0)); // silent: dirty stays clear
    c.access(readAcc(addrA));     // tag hit, dirty clear: just a read
    EXPECT_EQ(c.prematureWritebacks(), 0u);
    EXPECT_EQ(c.demandRowWrites(), 0u);
    EXPECT_EQ(c.demandRowReads(), 2u);
}

TEST_F(ControllerTest, WgReadToOtherSetLeavesGroupOpen)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(readAcc(addrA));
    c.access(readAcc(addrB));
    c.resetStats();

    c.access(writeAcc(addrA, 1)); // group A open
    c.access(readAcc(addrB));     // different set: plain read
    c.access(writeAcc(addrA, 2)); // still grouped!
    EXPECT_EQ(c.groupedWrites(), 1u);
    EXPECT_EQ(c.demandRowReads(), 2u);
    EXPECT_EQ(c.demandRowWrites(), 0u);
}

TEST_F(ControllerTest, WgRbBypassesReadHits)
{
    auto c = make(WriteScheme::WriteGroupingReadBypass);
    c.access(readAcc(addrA));
    c.resetStats();

    c.access(writeAcc(addrA, 0xabcd));
    const AccessOutcome out = c.access(readAcc(addrA));
    EXPECT_TRUE(out.bypassed);
    EXPECT_EQ(out.data, 0xabcdu);
    EXPECT_EQ(c.bypassedReads(), 1u);
    EXPECT_EQ(c.prematureWritebacks(), 0u);
    EXPECT_EQ(c.demandRowReads(), 1u); // only the group-opening read
    EXPECT_EQ(c.demandRowWrites(), 0u);
}

TEST_F(ControllerTest, WgRbBypassLatencyIsSetBufferLatency)
{
    auto c = make(WriteScheme::WriteGroupingReadBypass);
    c.access(readAcc(addrA));
    c.access(writeAcc(addrA, 7));
    const AccessOutcome out = c.access(readAcc(addrA));
    ASSERT_TRUE(out.bypassed);
    EXPECT_EQ(out.latencyCycles, c.config().latency.setBufferCycles);
}

TEST_F(ControllerTest, ReadsReturnWrittenData)
{
    for (WriteScheme s : {WriteScheme::SixTDirect, WriteScheme::Rmw,
                          WriteScheme::LocalRmw,
                          WriteScheme::WordGranular,
                          WriteScheme::WriteGrouping,
                          WriteScheme::WriteGroupingReadBypass}) {
        FunctionalMemory m;
        ControllerConfig cfg;
        cfg.scheme = s;
        CacheController c(cfg, m);

        c.access(writeAcc(addrA, 0x1122334455667788ull));
        const AccessOutcome out = c.access(readAcc(addrA));
        EXPECT_EQ(out.data, 0x1122334455667788ull) << toString(s);
    }
}

TEST_F(ControllerTest, SubWordWritesMerge)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(writeAcc(addrA, 0x1111111111111111ull));
    MemAccess half = writeAcc(addrA + 4, 0xffffffffull);
    half.size = 4;
    c.access(half);
    const AccessOutcome out = c.access(readAcc(addrA));
    EXPECT_EQ(out.data, 0xffffffff11111111ull);
}

TEST_F(ControllerTest, EvictionWritesVictimToMemory)
{
    auto c = make(WriteScheme::Rmw);
    const std::uint64_t set_span = 32 * 512;
    c.access(writeAcc(addrA, 0xaaaa)); // dirty block in way 0

    // Fill the set past associativity to force the dirty eviction.
    for (std::uint64_t i = 1; i <= 4; ++i)
        c.access(readAcc(addrA + i * set_span));
    EXPECT_EQ(mem.readWord(addrA), 0xaaaau);

    // And reading it again refills from memory with the right data.
    const AccessOutcome out = c.access(readAcc(addrA));
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(out.data, 0xaaaau);
}

TEST_F(ControllerTest, WgMissToBufferedSetFlushesGroup)
{
    auto c = make(WriteScheme::WriteGrouping);
    const std::uint64_t set_span = 32 * 512;
    c.access(writeAcc(addrA, 0xbb)); // group on A's set (after fill)
    c.resetStats();

    // A read to a different block in the same set that misses must
    // flush the buffered group before the fill.
    const AccessOutcome out = c.access(readAcc(addrA + set_span));
    EXPECT_FALSE(out.hit);
    EXPECT_FALSE(out.tagBufferHit);
    EXPECT_EQ(c.demandRowWrites(), 1u); // the forced flush
    // The grouped data survived in the array.
    EXPECT_EQ(c.peekWord(addrA), 0xbbu);
}

TEST_F(ControllerTest, DrainWritesDirtyEntries)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(writeAcc(addrA, 0x77));
    // The array row is still stale: the data lives in the Set-Buffer.
    const std::uint32_t set = c.tags().layout().setOf(addrA);
    const std::uint32_t way = c.tags().probe(addrA).way;
    EXPECT_EQ(c.array().peekRow(set)[way * 32], 0x00);
    c.drain();
    EXPECT_EQ(c.drainWrites(), 1u);
    EXPECT_EQ(c.peekWord(addrA), 0x77u);
    c.drain(); // second drain is a no-op
    EXPECT_EQ(c.drainWrites(), 1u);
}

TEST_F(ControllerTest, FlushCacheToMemoryPublishesDirtyLines)
{
    auto c = make(WriteScheme::WriteGroupingReadBypass);
    c.access(writeAcc(addrA, 0x99));
    c.access(writeAcc(addrB, 0x55));
    c.drain();
    c.flushCacheToMemory();
    EXPECT_EQ(mem.readWord(addrA), 0x99u);
    EXPECT_EQ(mem.readWord(addrB), 0x55u);
}

TEST_F(ControllerTest, MultiEntryBufferHoldsSeveralGroups)
{
    auto c = make(WriteScheme::WriteGrouping, 2);
    c.access(readAcc(addrA));
    c.access(readAcc(addrB));
    c.access(readAcc(addrC));
    c.resetStats();

    c.access(writeAcc(addrA, 1)); // group 1
    c.access(writeAcc(addrB, 2)); // group 2 (no eviction: 2 entries)
    c.access(writeAcc(addrA, 3)); // still grouped!
    c.access(writeAcc(addrB, 4)); // still grouped!
    EXPECT_EQ(c.groupedWrites(), 2u);
    EXPECT_EQ(c.demandRowWrites(), 0u);

    c.access(writeAcc(addrC, 5)); // evicts the LRU group (A)
    EXPECT_EQ(c.groupWritebacks(), 1u);
}

TEST_F(ControllerTest, GroupSizeDistributionRecorded)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(readAcc(addrA));
    c.access(readAcc(addrB));
    c.resetStats();

    c.access(writeAcc(addrA, 1));
    c.access(writeAcc(addrA, 2));
    c.access(writeAcc(addrA, 3));
    c.access(writeAcc(addrB, 4)); // closes the size-3 group
    c.drain();                    // closes the size-1 group
    EXPECT_EQ(c.groupSizes().count(), 2u);
    EXPECT_DOUBLE_EQ(c.groupSizes().mean(), 2.0);
    EXPECT_DOUBLE_EQ(c.groupSizes().max(), 3.0);
}

TEST_F(ControllerTest, RmwOccupiesBothPorts)
{
    auto c = make(WriteScheme::Rmw);
    c.access(readAcc(addrA));
    c.resetStats();
    c.access(writeAcc(addrA, 1));
    EXPECT_GT(c.ports().readBusyCycles(), 0u);
    EXPECT_GT(c.ports().writeBusyCycles(), 0u);
}

TEST_F(ControllerTest, LocalRmwLeavesReadPortFree)
{
    auto c = make(WriteScheme::LocalRmw);
    c.access(readAcc(addrA));
    c.resetStats();
    c.access(writeAcc(addrA, 1));
    EXPECT_EQ(c.ports().readBusyCycles(), 0u);
    EXPECT_GT(c.ports().writeBusyCycles(), 0u);
}

TEST_F(ControllerTest, EnergyAccumulates)
{
    auto c = make(WriteScheme::Rmw);
    c.access(readAcc(addrA));
    const double e1 = c.dynamicEnergy();
    EXPECT_GT(e1, 0.0);
    c.access(writeAcc(addrA, 1));
    EXPECT_GT(c.dynamicEnergy(), e1);
}

TEST_F(ControllerTest, WordGranularArrayIsNonInterleaved)
{
    auto c = make(WriteScheme::WordGranular);
    EXPECT_EQ(c.array().geometry().interleaveDegree, 1u);
    EXPECT_TRUE(c.array().geometry().wordGranularWwl);
}

TEST_F(ControllerTest, HitAndMissReported)
{
    auto c = make(WriteScheme::Rmw);
    EXPECT_FALSE(c.access(readAcc(addrA)).hit);
    EXPECT_TRUE(c.access(readAcc(addrA)).hit);
}

TEST_F(ControllerTest, MissPenaltyAppearsInReadLatency)
{
    auto c = make(WriteScheme::Rmw);
    const AccessOutcome miss = c.access(readAcc(addrA));
    MemAccess later = readAcc(addrA);
    later.gap = 100; // let the miss window drain off the ports
    const AccessOutcome hit = c.access(later);
    EXPECT_GE(miss.latencyCycles,
              c.config().latency.missPenaltyCycles);
    EXPECT_LT(hit.latencyCycles, miss.latencyCycles);
}

TEST_F(ControllerTest, ResetStatsKeepsArchitecturalState)
{
    auto c = make(WriteScheme::WriteGrouping);
    c.access(writeAcc(addrA, 0x42));
    c.resetStats();
    EXPECT_EQ(c.demandAccesses(), 0u);
    EXPECT_EQ(c.requests(), 0u);
    // Data survives the reset.
    EXPECT_EQ(c.access(readAcc(addrA)).data, 0x42u);
}

} // anonymous namespace
