/**
 * @file
 * Unit tests for the kernel workloads.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "trace/kernels.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace c8t::trace;

TEST(StreamCopy, AlternatesReadWrite)
{
    StreamCopyKernel k(16, 1);
    const auto t = collect(k, 1000);
    ASSERT_EQ(t.size(), 32u); // 16 loads + 16 stores
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (i % 2 == 0)
            EXPECT_TRUE(t[i].isRead()) << i;
        else
            EXPECT_TRUE(t[i].isWrite()) << i;
    }
}

TEST(StreamCopy, SourceAndDestinationDisjoint)
{
    StreamCopyKernel k(64, 1);
    const auto t = collect(k, 1000);
    for (std::size_t i = 0; i + 1 < t.size(); i += 2)
        EXPECT_NE(t[i].addr, t[i + 1].addr);
}

TEST(StreamCopy, MultiplePassesRepeatAddresses)
{
    StreamCopyKernel k(8, 2);
    const auto t = collect(k, 1000);
    EXPECT_EQ(t.size(), 32u); // 2 passes * 16
    EXPECT_EQ(t[0].addr, t[16].addr);
}

TEST(StreamCopy, WritesNeverSilent)
{
    StreamCopyKernel k(32, 3);
    MemAccess a;
    std::uint64_t prev_value = 0;
    while (k.next(a)) {
        if (a.isWrite()) {
            EXPECT_NE(a.data, prev_value);
            prev_value = a.data;
        }
    }
}

TEST(StreamCopy, ResetReplays)
{
    StreamCopyKernel k(16, 1);
    const auto first = collect(k, 100);
    k.reset();
    const auto second = collect(k, 100);
    EXPECT_EQ(first, second);
}

TEST(Stencil, ThreeLoadsPerStore)
{
    StencilKernel k(16, 1);
    const auto t = collect(k, 1000);
    std::size_t reads = 0, writes = 0;
    for (const auto &a : t)
        (a.isRead() ? reads : writes)++;
    EXPECT_EQ(reads, writes * 3);
}

TEST(Stencil, LoadsAreNeighbours)
{
    StencilKernel k(16, 1);
    const auto t = collect(k, 8);
    ASSERT_GE(t.size(), 4u);
    EXPECT_EQ(t[1].addr, t[0].addr + 8);
    EXPECT_EQ(t[2].addr, t[1].addr + 8);
    EXPECT_TRUE(t[3].isWrite());
}

TEST(PointerChase, ReadOnly)
{
    PointerChaseKernel k(64, 200);
    const auto t = collect(k, 1000);
    EXPECT_EQ(t.size(), 200u);
    for (const auto &a : t)
        EXPECT_TRUE(a.isRead());
}

TEST(PointerChase, VisitsAllNodes)
{
    PointerChaseKernel k(32, 32);
    std::set<std::uint64_t> addrs;
    MemAccess a;
    while (k.next(a))
        addrs.insert(a.addr);
    EXPECT_EQ(addrs.size(), 32u);
}

TEST(HashUpdate, ReadThenWriteSameBucket)
{
    HashUpdateKernel k(64, 100, 0.0, 0.5);
    const auto t = collect(k, 1000);
    ASSERT_EQ(t.size(), 200u);
    for (std::size_t i = 0; i + 1 < t.size(); i += 2) {
        EXPECT_TRUE(t[i].isRead());
        EXPECT_TRUE(t[i + 1].isWrite());
        EXPECT_EQ(t[i].addr, t[i + 1].addr);
    }
}

TEST(HashUpdate, SilentFractionApproximatelyRespected)
{
    HashUpdateKernel k(256, 20000, 0.4, 0.0, 9);
    MemAccess a;
    std::uint64_t silent = 0, writes = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> shadow;
    while (k.next(a)) {
        if (!a.isWrite())
            continue;
        ++writes;
        auto it = shadow.find(a.addr);
        const std::uint64_t cur = it == shadow.end() ? 0 : it->second;
        if (a.data == cur)
            ++silent;
        shadow[a.addr] = a.data;
    }
    EXPECT_NEAR(static_cast<double>(silent) / writes, 0.4, 0.03);
}

TEST(HashUpdate, ZeroSilentFractionHasNoSilentStores)
{
    HashUpdateKernel k(64, 5000, 0.0, 0.0, 11);
    MemAccess a;
    std::unordered_map<std::uint64_t, std::uint64_t> shadow;
    while (k.next(a)) {
        if (!a.isWrite())
            continue;
        auto it = shadow.find(a.addr);
        const std::uint64_t cur = it == shadow.end() ? 0 : it->second;
        EXPECT_NE(a.data, cur);
        shadow[a.addr] = a.data;
    }
}

TEST(Transpose, ReadsRowMajorWritesColumnMajor)
{
    TransposeKernel k(8, 4);
    const auto t = collect(k, 10000);
    EXPECT_EQ(t.size(), 2u * 8 * 8);
    // First pair: read (0,0), write (0,0) transposed == same index.
    EXPECT_TRUE(t[0].isRead());
    EXPECT_TRUE(t[1].isWrite());
}

TEST(Transpose, TouchesEveryElementOnce)
{
    TransposeKernel k(8, 4);
    std::set<std::uint64_t> reads, writes;
    MemAccess a;
    while (k.next(a)) {
        if (a.isRead())
            EXPECT_TRUE(reads.insert(a.addr).second);
        else
            EXPECT_TRUE(writes.insert(a.addr).second);
    }
    EXPECT_EQ(reads.size(), 64u);
    EXPECT_EQ(writes.size(), 64u);
}

TEST(Transpose, ResetReplays)
{
    TransposeKernel k(8, 4);
    const auto first = collect(k, 50);
    k.reset();
    EXPECT_EQ(collect(k, 50), first);
}

TEST(Fill, FirstPassWritesSecondPassSilent)
{
    FillKernel k(64, 2, 0x42);
    MemAccess a;
    std::uint64_t writes = 0, silent = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> shadow;
    while (k.next(a)) {
        EXPECT_TRUE(a.isWrite());
        ++writes;
        auto it = shadow.find(a.addr);
        if (it != shadow.end() && it->second == a.data)
            ++silent;
        shadow[a.addr] = a.data;
        EXPECT_EQ(a.data, 0x42u);
    }
    EXPECT_EQ(writes, 128u);
    EXPECT_EQ(silent, 64u); // the whole second pass
}

TEST(Fill, SinglePassNeverSilent)
{
    FillKernel k(32, 1, 7);
    MemAccess a;
    std::set<std::uint64_t> seen;
    while (k.next(a))
        EXPECT_TRUE(seen.insert(a.addr).second);
}

TEST(Fill, ResetReplays)
{
    FillKernel k(16, 2);
    const auto first = collect(k, 10);
    k.reset();
    EXPECT_EQ(collect(k, 10), first);
}

TEST(Kernels, NamesAreStable)
{
    EXPECT_EQ(StreamCopyKernel(8, 1).name(), "stream_copy");
    EXPECT_EQ(StencilKernel(8, 1).name(), "stencil3");
    EXPECT_EQ(PointerChaseKernel(8, 8).name(), "pointer_chase");
    EXPECT_EQ(HashUpdateKernel(8, 8).name(), "hash_update");
    EXPECT_EQ(TransposeKernel(8, 4).name(), "transpose");
    EXPECT_EQ(FillKernel(8, 1).name(), "fill");
}

} // anonymous namespace
