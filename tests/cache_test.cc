/**
 * @file
 * Unit tests for the cache tag array.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "mem/cache.hh"

namespace
{

using namespace c8t::mem;

CacheConfig
baseline()
{
    return CacheConfig{}; // 64 KB / 4-way / 32 B / LRU
}

TEST(CacheConfig, BaselineShape)
{
    const CacheConfig c = baseline();
    EXPECT_EQ(c.numSets(), 512u);
    EXPECT_EQ(c.setBytes(), 128u);
    EXPECT_NO_THROW(c.validate());
    EXPECT_EQ(c.toString(), "64KB/4w/32B/lru");
}

TEST(CacheConfig, RejectsBadShapes)
{
    CacheConfig c = baseline();
    c.blockBytes = 24;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = baseline();
    c.ways = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = baseline();
    c.sizeBytes = 64 * 1024 + 128;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = baseline();
    c.sizeBytes = 3 * 32 * 1024; // 768 sets: not a power of two
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(TagArray, ColdMissThenHit)
{
    TagArray t(baseline());
    EXPECT_FALSE(t.access(0x1000).hit);
    t.fill(0x1000);
    const LookupResult r = t.access(0x1000);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(TagArray, BlockGranularHits)
{
    TagArray t(baseline());
    t.fill(0x1000);
    EXPECT_TRUE(t.access(0x1000 + 31).hit); // same 32 B block
    EXPECT_FALSE(t.access(0x1000 + 32).hit); // next block
}

TEST(TagArray, ProbeHasNoSideEffects)
{
    TagArray t(baseline());
    t.fill(0x1000);
    (void)t.probe(0x1000);
    (void)t.probe(0x9999);
    EXPECT_EQ(t.hits(), 0u);
    EXPECT_EQ(t.misses(), 0u);
}

TEST(TagArray, FillsUseInvalidWaysFirst)
{
    TagArray t(baseline());
    const Addr set_span = 32 * 512;
    for (std::uint64_t i = 0; i < 4; ++i) {
        const FillResult f = t.fill(0x1000 + i * set_span);
        EXPECT_FALSE(f.evictedValid) << i;
    }
    // Fifth block in the same set evicts.
    const FillResult f = t.fill(0x1000 + 4 * set_span);
    EXPECT_TRUE(f.evictedValid);
}

TEST(TagArray, LruEvictionOrder)
{
    TagArray t(baseline());
    const Addr set_span = 32 * 512;
    for (std::uint64_t i = 0; i < 4; ++i)
        t.fill(0x1000 + i * set_span);
    // Touch block 0 so block 1 is LRU.
    t.access(0x1000);
    const FillResult f = t.fill(0x1000 + 4 * set_span);
    EXPECT_TRUE(f.evictedValid);
    EXPECT_EQ(f.evictedBlockAddr, 0x1000 + 1 * set_span);
}

TEST(TagArray, EvictionReportsDirtyState)
{
    TagArray t(baseline());
    const Addr set_span = 32 * 512;
    for (std::uint64_t i = 0; i < 4; ++i)
        t.fill(0x2000 + i * set_span);
    t.markDirty(0x2000); // block 0 dirty
    for (std::uint64_t i = 1; i < 4; ++i)
        t.access(0x2000 + i * set_span); // make block 0 LRU

    const FillResult f = t.fill(0x2000 + 4 * set_span);
    EXPECT_TRUE(f.evictedValid);
    EXPECT_TRUE(f.evictedDirty);
    EXPECT_EQ(f.evictedBlockAddr, 0x2000u);
    EXPECT_EQ(t.dirtyEvictions(), 1u);
}

TEST(TagArray, DirtyBitLifecycle)
{
    TagArray t(baseline());
    t.fill(0x3000);
    const std::uint32_t set = t.layout().setOf(0x3000);
    const std::uint32_t way = t.probe(0x3000).way;
    EXPECT_FALSE(t.isDirty(set, way));
    t.markDirty(0x3000);
    EXPECT_TRUE(t.isDirty(set, way));
    t.clearDirty(set, way);
    EXPECT_FALSE(t.isDirty(set, way));
}

TEST(TagArray, TagsOfSetMirrorsContents)
{
    TagArray t(baseline());
    const Addr set_span = 32 * 512;
    t.fill(0x4000);
    t.fill(0x4000 + set_span);
    const std::uint32_t set = t.layout().setOf(0x4000);
    const auto tags = t.tagsOfSet(set);
    ASSERT_EQ(tags.size(), 4u);
    EXPECT_EQ(t.validMask(set), 0b0011u);
    EXPECT_EQ(tags[0], t.layout().tagOf(0x4000));
    EXPECT_EQ(tags[1], t.layout().tagOf(0x4000 + set_span));
}

TEST(TagArray, BlockAddrAtRebuilds)
{
    TagArray t(baseline());
    t.fill(0xabcd00);
    const std::uint32_t set = t.layout().setOf(0xabcd00);
    const std::uint32_t way = t.probe(0xabcd00).way;
    EXPECT_EQ(t.blockAddrAt(set, way), t.layout().blockAlign(0xabcd00));
}

TEST(TagArray, FillClearsDirty)
{
    TagArray t(baseline());
    const Addr set_span = 32 * 512;
    // Fill and dirty four blocks, then evict one and refill: the new
    // line must start clean.
    for (std::uint64_t i = 0; i < 4; ++i) {
        t.fill(0x5000 + i * set_span);
        t.markDirty(0x5000 + i * set_span);
    }
    const FillResult f = t.fill(0x5000 + 4 * set_span);
    EXPECT_FALSE(t.isDirty(t.layout().setOf(0x5000), f.way));
}

TEST(TagArray, DistinctSetsIndependent)
{
    TagArray t(baseline());
    t.fill(0x1000);
    EXPECT_FALSE(t.access(0x1020).hit); // neighbouring set untouched
}

TEST(TagArray, ResetCountersKeepsContents)
{
    TagArray t(baseline());
    t.fill(0x1000);
    t.access(0x1000);
    t.resetCounters();
    EXPECT_EQ(t.hits(), 0u);
    EXPECT_TRUE(t.probe(0x1000).hit);
}

TEST(TagArray, WorksWithAllPolicies)
{
    for (ReplKind k : {ReplKind::Lru, ReplKind::TreePlru, ReplKind::Fifo,
                       ReplKind::Random}) {
        CacheConfig c = baseline();
        c.replacement = k;
        TagArray t(c);
        t.fill(0x1000);
        EXPECT_TRUE(t.access(0x1000).hit) << toString(k);
    }
}

} // anonymous namespace
