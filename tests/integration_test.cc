/**
 * @file
 * End-to-end integration tests: the headline results of the paper must
 * hold when the whole stack runs together, and trace files round-trip
 * through the full simulation pipeline.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/simulator.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace c8t::core;
using namespace c8t::trace;

std::vector<ControllerConfig>
schemes(const c8t::mem::CacheConfig &cache)
{
    std::vector<ControllerConfig> cfgs(4);
    for (auto &c : cfgs)
        c.cache = cache;
    cfgs[0].scheme = WriteScheme::SixTDirect;
    cfgs[1].scheme = WriteScheme::Rmw;
    cfgs[2].scheme = WriteScheme::WriteGrouping;
    cfgs[3].scheme = WriteScheme::WriteGroupingReadBypass;
    return cfgs;
}

constexpr RunConfig shortRun{20'000, 150'000};

double
reduction(const SchemeRunResult &rmw, const SchemeRunResult &r)
{
    return 1.0 - static_cast<double>(r.demandAccesses) /
                     static_cast<double>(rmw.demandAccesses);
}

TEST(Integration, RmwInflatesAccessesPerPaperClaim)
{
    // §1: "RMW increases cache access frequency by more than 32% on
    // average (max 47%)" — spot-check the two extremes.
    for (const char *name : {"bwaves", "mcf"}) {
        MarkovStream gen(specProfile(name));
        MultiSchemeRunner runner(schemes({}));
        const auto res = runner.run(gen, shortRun);
        const double inflation =
            static_cast<double>(res[1].demandAccesses) /
                res[0].demandAccesses -
            1.0;
        if (std::string(name) == "bwaves") {
            EXPECT_GT(inflation, 0.40) << name;
            EXPECT_LT(inflation, 0.50) << name;
        } else {
            EXPECT_GT(inflation, 0.20) << name;
        }
    }
}

TEST(Integration, BwavesHeadlineReductions)
{
    // Figure 9's best case: bwaves cuts >40 % of RMW accesses with WG.
    MarkovStream gen(specProfile("bwaves"));
    MultiSchemeRunner runner(schemes({}));
    const auto res = runner.run(gen, shortRun);
    EXPECT_GT(reduction(res[1], res[2]), 0.40);
    EXPECT_GT(reduction(res[1], res[3]), reduction(res[1], res[2]));
}

TEST(Integration, WgRbBeatsWgOnEveryProfileSpotCheck)
{
    for (const char *name : {"gamess", "cactusADM", "sjeng"}) {
        MarkovStream gen(specProfile(name));
        MultiSchemeRunner runner(schemes({}));
        const auto res = runner.run(gen, shortRun);
        EXPECT_LE(res[3].demandAccesses, res[2].demandAccesses) << name;
        EXPECT_LT(res[2].demandAccesses, res[1].demandAccesses) << name;
    }
}

TEST(Integration, LargerBlocksImproveBothSchemes)
{
    // The Figure 10 shape: 64 B blocks group better than 32 B.
    MarkovStream gen(specProfile("leslie3d"));

    MultiSchemeRunner base(schemes({64 * 1024, 4, 32}));
    const auto res32 = base.run(gen, shortRun);

    MultiSchemeRunner big(schemes({32 * 1024, 4, 64}));
    const auto res64 = big.run(gen, shortRun);

    EXPECT_GT(reduction(res64[1], res64[3]),
              reduction(res32[1], res32[3]));
}

TEST(Integration, CacheSizeBarelyMatters)
{
    // The Figure 11 shape: reductions are insensitive to cache size.
    MarkovStream gen(specProfile("gcc"));
    MultiSchemeRunner small(schemes({32 * 1024, 4, 32}));
    const auto res_s = small.run(gen, shortRun);
    MultiSchemeRunner large(schemes({128 * 1024, 4, 32}));
    const auto res_l = large.run(gen, shortRun);

    EXPECT_NEAR(reduction(res_s[1], res_s[2]),
                reduction(res_l[1], res_l[2]), 0.05);
}

TEST(Integration, TraceFileReplayMatchesLiveGeneration)
{
    // Generate -> write trace -> replay through the simulator: results
    // must be bit-identical to driving the generator directly.
    const auto path = std::filesystem::temp_directory_path() /
                      "c8t_integration.trc";

    MarkovStream gen(specProfile("povray"));
    {
        TraceWriter w(path.string());
        MemAccess a;
        for (int i = 0; i < 50'000; ++i) {
            gen.next(a);
            w.write(a);
        }
        w.finish();
    }

    MultiSchemeRunner live(schemes({}));
    gen.reset();
    const auto res_live = live.run(gen, {10'000, 40'000});

    TraceReader reader(path.string());
    MultiSchemeRunner replay(schemes({}));
    const auto res_replay = replay.run(reader, {10'000, 40'000});

    for (std::size_t i = 0; i < res_live.size(); ++i) {
        EXPECT_EQ(res_live[i].demandAccesses,
                  res_replay[i].demandAccesses);
        EXPECT_EQ(res_live[i].hits, res_replay[i].hits);
        EXPECT_EQ(res_live[i].groupedWrites,
                  res_replay[i].groupedWrites);
    }
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

TEST(Integration, SilentDetectionAblationMatters)
{
    // Turning the comparator off must cost write-backs on a silent-
    // heavy stream (the Figure 5 -> Figure 9 causal link).
    MarkovStream gen(specProfile("bwaves"));

    std::vector<ControllerConfig> cfgs(2);
    cfgs[0].scheme = WriteScheme::WriteGrouping;
    cfgs[1].scheme = WriteScheme::WriteGrouping;
    cfgs[1].silentDetection = false;
    MultiSchemeRunner runner(cfgs);
    const auto res = runner.run(gen, shortRun);
    EXPECT_LT(res[0].demandAccesses, res[1].demandAccesses);
    EXPECT_GT(res[0].silentGroupsElided, 0u);
    EXPECT_EQ(res[1].silentGroupsElided, 0u);
}

TEST(Integration, EnergyFollowsAccessReduction)
{
    // §5.5's power argument: fewer row operations => less dynamic
    // energy, with the Set-Buffer's small cost not erasing the win.
    MarkovStream gen(specProfile("lbm"));
    MultiSchemeRunner runner(schemes({}));
    const auto res = runner.run(gen, shortRun);
    EXPECT_LT(res[2].dynamicEnergy, res[1].dynamicEnergy);
    EXPECT_LT(res[3].dynamicEnergy, res[2].dynamicEnergy);
}

TEST(Integration, PortStallsDropUnderGrouping)
{
    MarkovStream gen(specProfile("bwaves"));
    MultiSchemeRunner runner(schemes({}));
    const auto res = runner.run(gen, shortRun);
    // RMW writes occupy both ports; WG+RB removes most of that.
    EXPECT_LT(res[3].portStallCycles, res[1].portStallCycles);
}

TEST(Integration, MeanReadLatencyDropsWithBypassing)
{
    MarkovStream gen(specProfile("gamess"));
    MultiSchemeRunner runner(schemes({}));
    const auto res = runner.run(gen, shortRun);
    EXPECT_LT(res[3].meanReadLatency, res[1].meanReadLatency);
}

} // anonymous namespace
