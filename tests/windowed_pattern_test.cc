/**
 * @file
 * Tests for the drifting working-set (windowed random) pattern.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/patterns.hh"

namespace
{

using namespace c8t::trace;

TEST(WindowedRandom, StaysInsideRegion)
{
    Rng rng(1);
    WindowedRandomPattern p(0x100000, 1 << 20, 64 * 1024, 100);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t a = p.nextAddr(rng);
        EXPECT_GE(a, 0x100000u);
        EXPECT_LT(a, 0x100000u + (1 << 20));
        EXPECT_EQ(a % 8, 0u);
    }
}

TEST(WindowedRandom, DrawsClusterWithinAPhase)
{
    Rng rng(2);
    const std::uint64_t window = 4096;
    WindowedRandomPattern p(0, 1 << 24, window, 1000);
    // Within one phase, all draws span at most the window.
    std::uint64_t lo = ~0ull, hi = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t a = p.nextAddr(rng);
        lo = std::min(lo, a);
        hi = std::max(hi, a);
    }
    EXPECT_LE(hi - lo, window);
}

TEST(WindowedRandom, PhasesJumpAcrossTheRegion)
{
    Rng rng(3);
    const std::uint64_t window = 4096;
    WindowedRandomPattern p(0, 1 << 24, window, 64);
    // Across many phases the pattern covers far more than one window.
    std::uint64_t lo = ~0ull, hi = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t a = p.nextAddr(rng);
        lo = std::min(lo, a);
        hi = std::max(hi, a);
    }
    EXPECT_GT(hi - lo, window * 100);
}

TEST(WindowedRandom, TemporalReuseWithinPhase)
{
    // A window much smaller than the draw budget revisits addresses —
    // the locality property the plain RandomPattern lacks.
    Rng rng(4);
    WindowedRandomPattern p(0, 1 << 24, 1024, 2000);
    std::set<std::uint64_t> unique;
    for (int i = 0; i < 2000; ++i)
        unique.insert(p.nextAddr(rng));
    EXPECT_LE(unique.size(), 128u); // 1024 B / 8 B = 128 slots
    EXPECT_GT(unique.size(), 100u); // and most slots were touched
}

TEST(WindowedRandom, ResetRestartsPhaseSchedule)
{
    Rng rng_a(5), rng_b(5);
    WindowedRandomPattern a(0, 1 << 20, 4096, 10);
    WindowedRandomPattern b(0, 1 << 20, 4096, 10);
    for (int i = 0; i < 100; ++i)
        a.nextAddr(rng_a);
    a.reset();
    rng_a.seed(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextAddr(rng_a), b.nextAddr(rng_b));
}

TEST(WindowedRandom, Name)
{
    WindowedRandomPattern p(0, 1 << 20, 4096);
    EXPECT_EQ(p.name(), "windowed_random");
}

} // anonymous namespace
