/**
 * @file
 * Unit tests for the 1R/1W port scheduler.
 */

#include <gtest/gtest.h>

#include "sram/ports.hh"

namespace
{

using namespace c8t::sram;

TEST(Ports, IndependentPortsDoNotConflict)
{
    // The 8T selling point: one read and one write in the same cycle.
    PortScheduler p;
    EXPECT_EQ(p.schedule(PortUse::ReadPort, 0, 2), 0u);
    EXPECT_EQ(p.schedule(PortUse::WritePort, 0, 2), 0u);
    EXPECT_EQ(p.conflicts(), 0u);
    EXPECT_EQ(p.stallCycles(), 0u);
}

TEST(Ports, SamePortSerializes)
{
    PortScheduler p;
    EXPECT_EQ(p.schedule(PortUse::ReadPort, 0, 2), 0u);
    EXPECT_EQ(p.schedule(PortUse::ReadPort, 0, 2), 2u);
    EXPECT_EQ(p.conflicts(), 1u);
    EXPECT_EQ(p.stallCycles(), 2u);
}

TEST(Ports, RmwBlocksBothPorts)
{
    // An RMW write occupies both ports: a subsequent read must wait —
    // the §2 performance cost of RMW.
    PortScheduler p;
    EXPECT_EQ(p.schedule(PortUse::BothPorts, 0, 4), 0u);
    EXPECT_EQ(p.schedule(PortUse::ReadPort, 0, 2), 4u);
    EXPECT_EQ(p.schedule(PortUse::WritePort, 0, 2), 4u);
}

TEST(Ports, WriteOnlyWritebackLeavesReadPortFree)
{
    // A Set-Buffer write-back (row image already latched) holds only
    // the write port, so reads proceed — the WG availability win.
    PortScheduler p;
    EXPECT_EQ(p.schedule(PortUse::WritePort, 0, 4), 0u);
    EXPECT_EQ(p.schedule(PortUse::ReadPort, 0, 2), 0u);
    EXPECT_EQ(p.conflicts(), 0u);
}

TEST(Ports, EarliestRespected)
{
    PortScheduler p;
    EXPECT_EQ(p.schedule(PortUse::ReadPort, 10, 2), 10u);
    EXPECT_EQ(p.readFreeAt(), 12u);
}

TEST(Ports, WaitsOnlyForTheNeededPort)
{
    PortScheduler p;
    p.schedule(PortUse::WritePort, 0, 10);
    // Read at cycle 1 unaffected by the busy write port.
    EXPECT_EQ(p.schedule(PortUse::ReadPort, 1, 2), 1u);
    // Another write must wait.
    EXPECT_EQ(p.schedule(PortUse::WritePort, 1, 2), 10u);
}

TEST(Ports, BusyCycleAccounting)
{
    PortScheduler p;
    p.schedule(PortUse::ReadPort, 0, 3);
    p.schedule(PortUse::WritePort, 0, 5);
    p.schedule(PortUse::BothPorts, 0, 2);
    EXPECT_EQ(p.readBusyCycles(), 3u + 2u);
    EXPECT_EQ(p.writeBusyCycles(), 5u + 2u);
}

TEST(Ports, BothPortsWaitsForLaterOfTheTwo)
{
    PortScheduler p;
    p.schedule(PortUse::ReadPort, 0, 2);  // read free at 2
    p.schedule(PortUse::WritePort, 0, 6); // write free at 6
    EXPECT_EQ(p.schedule(PortUse::BothPorts, 0, 1), 6u);
}

TEST(Ports, ResetClearsScheduleAndCounters)
{
    PortScheduler p;
    p.schedule(PortUse::BothPorts, 0, 4);
    p.schedule(PortUse::ReadPort, 0, 1);
    p.reset();
    EXPECT_EQ(p.readFreeAt(), 0u);
    EXPECT_EQ(p.writeFreeAt(), 0u);
    EXPECT_EQ(p.conflicts(), 0u);
    EXPECT_EQ(p.stallCycles(), 0u);
    EXPECT_EQ(p.schedule(PortUse::ReadPort, 0, 1), 0u);
}

} // anonymous namespace
