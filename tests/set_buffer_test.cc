/**
 * @file
 * Unit tests for the Set-Buffer, including the silent-store comparator
 * semantics.
 */

#include <gtest/gtest.h>

#include "core/set_buffer.hh"

namespace
{

using namespace c8t::core;
using c8t::sram::RowData;

RowData
patternRow(std::uint32_t bytes, std::uint8_t seed)
{
    RowData r(bytes);
    for (std::uint32_t i = 0; i < bytes; ++i)
        r[i] = static_cast<std::uint8_t>(seed + i);
    return r;
}

TEST(SetBuffer, FillThenRowMatches)
{
    SetBuffer sb(1, 128);
    const RowData row = patternRow(128, 3);
    sb.fill(0, row);
    EXPECT_EQ(sb.row(0), row);
    EXPECT_EQ(sb.fills(), 1u);
}

TEST(SetBuffer, UpdateChangesBytesAndReportsChange)
{
    SetBuffer sb(1, 128);
    sb.fill(0, patternRow(128, 0));
    const std::uint8_t data[4] = {0xde, 0xad, 0xbe, 0xef};
    EXPECT_TRUE(sb.updateBytes(0, 10, data, 4));
    EXPECT_EQ(sb.row(0)[10], 0xde);
    EXPECT_EQ(sb.row(0)[13], 0xef);
    EXPECT_EQ(sb.row(0)[9], 9);  // neighbours untouched
    EXPECT_EQ(sb.row(0)[14], 14);
}

TEST(SetBuffer, SilentUpdateDetected)
{
    // Writing the value already present must report "not changed" —
    // the comparator that makes the Dirty-bit optimisation work.
    SetBuffer sb(1, 128);
    sb.fill(0, patternRow(128, 0));
    const std::uint8_t same[4] = {10, 11, 12, 13};
    EXPECT_FALSE(sb.updateBytes(0, 10, same, 4));
    EXPECT_EQ(sb.silentUpdates(), 1u);
    EXPECT_EQ(sb.updates(), 1u);
}

TEST(SetBuffer, PartialMatchIsNotSilent)
{
    SetBuffer sb(1, 128);
    sb.fill(0, patternRow(128, 0));
    const std::uint8_t data[4] = {10, 11, 99, 13}; // one byte differs
    EXPECT_TRUE(sb.updateBytes(0, 10, data, 4));
    EXPECT_EQ(sb.silentUpdates(), 0u);
}

TEST(SetBuffer, ReadBytes)
{
    SetBuffer sb(1, 128);
    sb.fill(0, patternRow(128, 5));
    std::uint8_t out[8];
    sb.readBytes(0, 32, out, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], 5 + 32 + i);
    EXPECT_EQ(sb.reads(), 1u);
}

TEST(SetBuffer, MultipleEntriesIndependent)
{
    SetBuffer sb(2, 64);
    sb.fill(0, patternRow(64, 1));
    sb.fill(1, patternRow(64, 2));
    EXPECT_EQ(sb.row(0)[0], 1);
    EXPECT_EQ(sb.row(1)[0], 2);

    const std::uint8_t v = 0xff;
    sb.updateBytes(0, 0, &v, 1);
    EXPECT_EQ(sb.row(0)[0], 0xff);
    EXPECT_EQ(sb.row(1)[0], 2);
}

TEST(SetBuffer, RefillOverwritesWholeEntry)
{
    SetBuffer sb(1, 64);
    sb.fill(0, patternRow(64, 1));
    sb.fill(0, patternRow(64, 9));
    EXPECT_EQ(sb.row(0), patternRow(64, 9));
    EXPECT_EQ(sb.fills(), 2u);
}

TEST(SetBuffer, Accessors)
{
    SetBuffer sb(4, 256);
    EXPECT_EQ(sb.entries(), 4u);
    EXPECT_EQ(sb.rowBytes(), 256u);
}

TEST(SetBuffer, ResetCountersKeepsContents)
{
    SetBuffer sb(1, 64);
    sb.fill(0, patternRow(64, 7));
    std::uint8_t out[1];
    sb.readBytes(0, 0, out, 1);
    sb.resetCounters();
    EXPECT_EQ(sb.fills(), 0u);
    EXPECT_EQ(sb.reads(), 0u);
    EXPECT_EQ(sb.row(0), patternRow(64, 7));
}

} // anonymous namespace
