/**
 * @file
 * Unit tests for the stream analyzer (the Figures 3-5 measurement
 * machinery), on hand-constructed streams with known answers.
 */

#include <gtest/gtest.h>

#include "core/analyzer.hh"

namespace
{

using namespace c8t::core;
using c8t::mem::AddrLayout;
using c8t::trace::AccessType;
using c8t::trace::MemAccess;

MemAccess
read(std::uint64_t addr, std::uint32_t gap = 0)
{
    MemAccess a;
    a.addr = addr;
    a.gap = gap;
    return a;
}

MemAccess
write(std::uint64_t addr, std::uint64_t data, std::uint32_t gap = 0)
{
    MemAccess a;
    a.addr = addr;
    a.type = AccessType::Write;
    a.data = data;
    a.gap = gap;
    return a;
}

class AnalyzerTest : public ::testing::Test
{
  protected:
    AnalyzerTest() : layout(32, 512), an(layout) {}

    AddrLayout layout;
    StreamAnalyzer an;
};

TEST_F(AnalyzerTest, CountsInstructionsFromGaps)
{
    an.observe(read(0x0, 3)); // 3 non-mem + 1 mem
    an.observe(read(0x40, 0));
    EXPECT_EQ(an.instructions(), 5u);
    EXPECT_EQ(an.accesses(), 2u);
}

TEST_F(AnalyzerTest, ReadWriteInstrFractions)
{
    an.observe(read(0x0, 1));
    an.observe(write(0x40, 1, 1));
    // 4 instructions: 1 read, 1 write.
    EXPECT_DOUBLE_EQ(an.readInstrFraction(), 0.25);
    EXPECT_DOUBLE_EQ(an.writeInstrFraction(), 0.25);
}

TEST_F(AnalyzerTest, PairClassification)
{
    const std::uint64_t set_span = 32 * 512;
    // Same set: a and a+set_span; different set: a+32.
    an.observe(read(0x1000));            // no pair yet
    an.observe(read(0x1000 + set_span)); // RR same set
    an.observe(write(0x1000, 1));        // RW same set
    an.observe(write(0x1000 + 8, 2));    // WW same set (same block)
    an.observe(read(0x1010));            // WR same set
    an.observe(read(0x1020));            // different set: unclassified
    an.observe(write(0x2000, 3));        // different set

    EXPECT_EQ(an.pairs(), 6u);
    EXPECT_EQ(an.rrPairs(), 1u);
    EXPECT_EQ(an.rwPairs(), 1u);
    EXPECT_EQ(an.wwPairs(), 1u);
    EXPECT_EQ(an.wrPairs(), 1u);
    EXPECT_DOUBLE_EQ(an.sameSetShare(), 4.0 / 6.0);
}

TEST_F(AnalyzerTest, SilentWriteDetection)
{
    an.observe(write(0x100, 0xdead)); // first write: not silent
    an.observe(write(0x100, 0xdead)); // same value: silent
    an.observe(write(0x100, 0xbeef)); // new value: not silent
    EXPECT_EQ(an.silentWrites(), 1u);
    EXPECT_DOUBLE_EQ(an.silentWriteFraction(), 1.0 / 3.0);
}

TEST_F(AnalyzerTest, WritingZeroToUntouchedMemoryIsSilent)
{
    an.observe(write(0x200, 0));
    EXPECT_EQ(an.silentWrites(), 1u);
}

TEST_F(AnalyzerTest, SubWordSilentDetection)
{
    MemAccess a = write(0x300, 0xaabb);
    a.size = 2;
    an.observe(a);
    an.observe(a); // identical 2-byte write: silent
    MemAccess b = write(0x300 + 2, 0xcc);
    b.size = 1;
    an.observe(b); // different bytes of the same word: not silent
    EXPECT_EQ(an.silentWrites(), 1u);
}

TEST_F(AnalyzerTest, PartialOverlapNotSilent)
{
    MemAccess a = write(0x400, 0x1122334455667788ull);
    an.observe(a);
    MemAccess b = write(0x400, 0x1122334455667789ull);
    an.observe(b);
    EXPECT_EQ(an.silentWrites(), 0u);
}

TEST_F(AnalyzerTest, ReadsDoNotAffectSilentState)
{
    an.observe(write(0x500, 7));
    an.observe(read(0x500));
    an.observe(write(0x500, 7));
    EXPECT_EQ(an.silentWrites(), 1u);
}

TEST_F(AnalyzerTest, ResetClearsEverything)
{
    an.observe(write(0x100, 1));
    an.observe(write(0x100, 1));
    an.reset();
    EXPECT_EQ(an.instructions(), 0u);
    EXPECT_EQ(an.pairs(), 0u);
    // After reset the shadow is gone: writing 1 to 0x100 is non-silent
    // only against zeroed memory — value 1 != 0, so not silent.
    an.observe(write(0x100, 1));
    EXPECT_EQ(an.silentWrites(), 0u);
}

TEST_F(AnalyzerTest, LargerBlocksReclassifyPairs)
{
    // 0x1000 and 0x1020 are different 32 B sets but the same 64 B set —
    // the Figure 10 reclassification.
    AddrLayout big(64, 128);
    StreamAnalyzer an_big(big);

    an.observe(read(0x1000));
    an.observe(read(0x1020));
    an_big.observe(read(0x1000));
    an_big.observe(read(0x1020));

    EXPECT_EQ(an.rrPairs(), 0u);
    EXPECT_EQ(an_big.rrPairs(), 1u);
}

} // anonymous namespace
