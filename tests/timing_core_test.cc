/**
 * @file
 * Tests for the in-order timing core (§5.5 performance model).
 */

#include <gtest/gtest.h>

#include "cpu/timing_core.hh"
#include "trace/kernels.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t::cpu;
using c8t::core::CacheController;
using c8t::core::ControllerConfig;
using c8t::core::WriteScheme;
using c8t::mem::FunctionalMemory;

TimingResult
runScheme(WriteScheme scheme, c8t::trace::AccessGenerator &gen,
          std::uint64_t n)
{
    gen.reset();
    FunctionalMemory mem;
    ControllerConfig cfg;
    cfg.scheme = scheme;
    CacheController ctrl(cfg, mem);
    TimingCore core(CoreParams{}, ctrl);
    return core.run(gen, n);
}

TEST(TimingCore, CpiAtLeastOne)
{
    c8t::trace::StreamCopyKernel gen(10000, 1);
    const TimingResult r = runScheme(WriteScheme::Rmw, gen, 20000);
    EXPECT_GE(r.cpi(), 1.0);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_EQ(r.cycles, r.instructions + r.readStallCycles);
}

TEST(TimingCore, IpcIsInverseOfCpi)
{
    c8t::trace::StreamCopyKernel gen(10000, 1);
    const TimingResult r = runScheme(WriteScheme::Rmw, gen, 20000);
    EXPECT_NEAR(r.ipc() * r.cpi(), 1.0, 1e-9);
}

TEST(TimingCore, EmptyRunIsZero)
{
    c8t::trace::StreamCopyKernel gen(10, 1);
    FunctionalMemory mem;
    ControllerConfig cfg;
    CacheController ctrl(cfg, mem);
    TimingCore core(CoreParams{}, ctrl);
    const TimingResult r = core.run(gen, 0);
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_DOUBLE_EQ(r.cpi(), 0.0);
    EXPECT_DOUBLE_EQ(r.ipc(), 0.0);
}

TEST(TimingCore, ReadStallsComeFromLatency)
{
    // Every hit read costs rowReadCycles = 2 > slack 1, so each read
    // stalls at least one cycle.
    c8t::trace::PointerChaseKernel gen(128, 5000); // fits in cache
    const TimingResult r = runScheme(WriteScheme::Rmw, gen, 5000);
    EXPECT_GT(r.readStallCycles, 0u);
}

TEST(TimingCore, WgRbFasterThanRmwOnStoreReuseWorkload)
{
    // The §5.5 claim, reproduced: bypassed reads cut read latency and
    // write grouping removes port contention, so WG+RB's CPI must not
    // exceed RMW's on a store/reuse-heavy stream.
    c8t::trace::MarkovStream gen(c8t::trace::specProfile("bwaves"));
    const std::uint64_t n = 100'000;
    const TimingResult rmw = runScheme(WriteScheme::Rmw, gen, n);
    const TimingResult wg =
        runScheme(WriteScheme::WriteGrouping, gen, n);
    const TimingResult rb =
        runScheme(WriteScheme::WriteGroupingReadBypass, gen, n);

    EXPECT_LE(rb.cycles, wg.cycles);
    EXPECT_LE(rb.cycles, rmw.cycles);
}

TEST(TimingCore, InstructionCountIncludesGaps)
{
    // The Markov stream carries instruction gaps; the core must count
    // them (instructions >> memory accesses).
    c8t::trace::MarkovStream gen(c8t::trace::specProfile("sjeng"));
    const TimingResult r = runScheme(WriteScheme::Rmw, gen, 10'000);
    EXPECT_GT(r.instructions, 10'000u * 2);
}

} // anonymous namespace
