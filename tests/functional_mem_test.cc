/**
 * @file
 * Unit tests for the functional backing memory.
 */

#include <gtest/gtest.h>

#include "mem/functional_mem.hh"

namespace
{

using c8t::mem::FunctionalMemory;

TEST(FunctionalMemory, ReadsZeroWhenUntouched)
{
    FunctionalMemory m;
    EXPECT_EQ(m.readWord(0x1000), 0u);
    EXPECT_EQ(m.touchedWords(), 0u);
}

TEST(FunctionalMemory, WordRoundTrip)
{
    FunctionalMemory m;
    m.writeWord(0x1000, 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.readWord(0x1000), 0xdeadbeefcafef00dull);
}

TEST(FunctionalMemory, WordAddressesAreAligned)
{
    FunctionalMemory m;
    m.writeWord(0x1003, 42); // unaligned address hits the same word
    EXPECT_EQ(m.readWord(0x1000), 42u);
    EXPECT_EQ(m.readWord(0x1007), 42u);
}

TEST(FunctionalMemory, ZeroWritesKeepMapSparse)
{
    FunctionalMemory m;
    m.writeWord(0x1000, 7);
    EXPECT_EQ(m.touchedWords(), 1u);
    m.writeWord(0x1000, 0);
    EXPECT_EQ(m.touchedWords(), 0u);
    EXPECT_EQ(m.readWord(0x1000), 0u);
}

TEST(FunctionalMemory, ByteReadBackOfWordWrite)
{
    FunctionalMemory m;
    m.writeWord(0x2000, 0x0807060504030201ull);
    const auto bytes = m.readBytes(0x2000, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(bytes[i], i + 1);
}

TEST(FunctionalMemory, ByteWriteReadRoundTrip)
{
    FunctionalMemory m;
    const std::uint8_t data[] = {0xaa, 0xbb, 0xcc};
    m.writeBytes(0x3001, data, 3); // unaligned, within one word
    const auto out = m.readBytes(0x3001, 3);
    EXPECT_EQ(out[0], 0xaa);
    EXPECT_EQ(out[1], 0xbb);
    EXPECT_EQ(out[2], 0xcc);
    // Surrounding bytes untouched.
    EXPECT_EQ(m.readBytes(0x3000, 1)[0], 0u);
}

TEST(FunctionalMemory, ByteAccessSpansWords)
{
    FunctionalMemory m;
    std::uint8_t data[16];
    for (int i = 0; i < 16; ++i)
        data[i] = static_cast<std::uint8_t>(i + 1);
    m.writeBytes(0x4004, data, 16); // spans three words
    const auto out = m.readBytes(0x4004, 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], i + 1);
}

TEST(FunctionalMemory, BlockSizedTransfers)
{
    FunctionalMemory m;
    std::vector<std::uint8_t> block(32);
    for (int i = 0; i < 32; ++i)
        block[i] = static_cast<std::uint8_t>(255 - i);
    m.writeBytes(0x5000, block.data(), block.size());
    EXPECT_EQ(m.readBytes(0x5000, 32), block);
}

TEST(FunctionalMemory, PartialByteOverwrite)
{
    FunctionalMemory m;
    m.writeWord(0x6000, ~0ull);
    const std::uint8_t zero = 0;
    m.writeBytes(0x6003, &zero, 1);
    EXPECT_EQ(m.readWord(0x6000), ~0ull & ~(0xffull << 24));
}

TEST(FunctionalMemory, ClearDropsEverything)
{
    FunctionalMemory m;
    m.writeWord(0x1000, 1);
    m.writeWord(0x2000, 2);
    m.clear();
    EXPECT_EQ(m.touchedWords(), 0u);
    EXPECT_EQ(m.readWord(0x1000), 0u);
}

TEST(FunctionalMemory, DistinctWordsIndependent)
{
    FunctionalMemory m;
    m.writeWord(0x1000, 1);
    m.writeWord(0x1008, 2);
    EXPECT_EQ(m.readWord(0x1000), 1u);
    EXPECT_EQ(m.readWord(0x1008), 2u);
}

} // anonymous namespace
