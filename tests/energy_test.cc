/**
 * @file
 * Unit tests for the cacti-lite energy/latency/area model. The tests
 * pin the *relative* properties the paper's arguments rest on, not
 * absolute joule values.
 */

#include <gtest/gtest.h>

#include "sram/energy.hh"

namespace
{

using namespace c8t::sram;

ArrayGeometry
baselineGeom()
{
    // 64 KB / 4-way / 32 B: 512 rows of 128 B.
    ArrayGeometry g;
    g.rows = 512;
    g.bytesPerRow = 128;
    return g;
}

TEST(EnergyModel, AllEnergiesPositive)
{
    EnergyModel m(baselineGeom());
    EXPECT_GT(m.rowReadEnergy(), 0.0);
    EXPECT_GT(m.rowWriteEnergy(), 0.0);
    EXPECT_GT(m.partialWriteEnergy(8), 0.0);
    EXPECT_GT(m.setBufferReadEnergy(8), 0.0);
    EXPECT_GT(m.setBufferWriteEnergy(8), 0.0);
    EXPECT_GT(m.tagCompareEnergy(34, 4), 0.0);
}

TEST(EnergyModel, SetBufferAccessFarCheaperThanRowAccess)
{
    // The paper's power argument (§5.5): replacing row accesses with
    // Set-Buffer accesses saves energy.
    EnergyModel m(baselineGeom());
    EXPECT_LT(m.setBufferReadEnergy(8) * 10, m.rowReadEnergy());
    EXPECT_LT(m.setBufferWriteEnergy(8) * 10, m.rowWriteEnergy());
}

TEST(EnergyModel, PartialWriteCheaperThanFullRowWrite)
{
    EnergyModel m(baselineGeom());
    EXPECT_LT(m.partialWriteEnergy(8), m.rowWriteEnergy());
}

TEST(EnergyModel, EnergyScalesWithVddSquared)
{
    TechParams hi;
    hi.vdd = 1.0;
    TechParams lo = hi;
    lo.vdd = 0.5;
    EnergyModel mh(baselineGeom(), hi);
    EnergyModel ml(baselineGeom(), lo);
    EXPECT_NEAR(ml.rowReadEnergy() / mh.rowReadEnergy(), 0.25, 1e-9);
    EXPECT_NEAR(ml.rowWriteEnergy() / mh.rowWriteEnergy(), 0.25, 1e-9);
}

TEST(EnergyModel, WiderRowsCostMore)
{
    ArrayGeometry narrow = baselineGeom();
    ArrayGeometry wide = baselineGeom();
    wide.bytesPerRow = 256;
    EnergyModel mn(narrow), mw(wide);
    EXPECT_GT(mw.rowReadEnergy(), mn.rowReadEnergy());
    EXPECT_GT(mw.rowWriteEnergy(), mn.rowWriteEnergy());
}

TEST(EnergyModel, SetBufferLatencyBelowRowLatency)
{
    // §5.5: "access latency to the Set-Buffer is less than the cache
    // latency".
    EnergyModel m(baselineGeom());
    EXPECT_LT(m.setBufferLatency(), m.rowReadLatency());
    EXPECT_LT(m.setBufferLatency(), m.rowWriteLatency());
}

TEST(EnergyModel, LatenciesPositive)
{
    EnergyModel m(baselineGeom());
    EXPECT_GT(m.rowReadLatency(), 0.0);
    EXPECT_GT(m.rowWriteLatency(), 0.0);
    EXPECT_GT(m.setBufferLatency(), 0.0);
}

TEST(EnergyModel, EightTAreaLargerThanSixT)
{
    EnergyModel m(baselineGeom());
    EXPECT_GT(m.dataArrayArea(CellType::EightT),
              m.dataArrayArea(CellType::SixT));
}

TEST(EnergyModel, SetBufferOverheadBelowPaperBound)
{
    // §5.4: the Set-Buffer adds less than 0.2 % to the 64 KB baseline.
    EnergyModel m(baselineGeom());
    EXPECT_LT(m.setBufferOverheadFraction(), 0.002);
    EXPECT_GT(m.setBufferOverheadFraction(), 0.0);
}

TEST(EnergyModel, TagBufferBitsBelowPaperBound)
{
    // §5.4: < 150 bits for 48-bit physical addresses on the baseline
    // (9 set bits, 34-bit tags, 4 ways).
    const std::uint32_t bits = EnergyModel::tagBufferBits(9, 34, 4);
    EXPECT_LT(bits, 150u);
    EXPECT_EQ(bits, 9u + 34u * 4u + 1u);
}

TEST(EnergyModel, LeakageScalesWithCellCount)
{
    ArrayGeometry small = baselineGeom();
    ArrayGeometry big = baselineGeom();
    big.rows = 1024;
    EnergyModel ms(small), mb(big);
    EXPECT_NEAR(mb.leakagePower() / ms.leakagePower(), 2.0, 1e-9);
}

} // anonymous namespace
