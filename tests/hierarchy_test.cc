/**
 * @file
 * Hierarchy-wide property tests (DESIGN.md §14): the inclusion
 * invariant, per-level event-ring reconciliation against the registry
 * counters, write-back accounting between levels, and byte-identity
 * of the shared job documents across worker counts.
 */

#include <gtest/gtest.h>

#include <string>

#include "app/job_runner.hh"
#include "core/controller.hh"
#include "core/job_spec.hh"
#include "core/level_stack.hh"
#include "obs/event_ring.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::ControllerConfig;
using core::LevelConfig;
using core::LevelStack;

/** 64K/4w/32B L1 over an equal-capacity 64K/8w/32B L2: the tightest
 *  legal hierarchy, so L2 evictions (and therefore back-invalidations
 *  of live L1 lines) happen constantly. */
ControllerConfig
tightHierConfig()
{
    ControllerConfig cfg;
    LevelConfig l2;
    l2.cache = mem::CacheConfig{64 * 1024, 8, 32};
    cfg.lowerLevels.push_back(l2);
    return cfg;
}

/** Assert every valid L1 line is L2-resident (inclusion). */
void
expectInclusion(const LevelStack &stack, int after_accesses)
{
    const mem::TagArray &l1 = stack.top().tags();
    const mem::TagArray &l2 = stack.level(1).tags();
    for (std::uint32_t set = 0; set < l1.config().numSets(); ++set) {
        for (std::uint32_t way = 0; way < l1.config().ways; ++way) {
            if (!l1.isValid(set, way))
                continue;
            const mem::Addr addr = l1.blockAddrAt(set, way);
            ASSERT_TRUE(l2.probe(addr).hit)
                << "L1 line 0x" << std::hex << addr << std::dec
                << " not in L2 after " << after_accesses << " accesses";
        }
    }
}

TEST(Hierarchy, InclusionInvariantHolds)
{
    trace::MarkovStream gen(trace::specProfile("mcf"));
    mem::FunctionalMemory memory;
    LevelStack stack(tightHierConfig(), memory);

    trace::MemAccess a;
    for (int i = 1; i <= 60'000; ++i) {
        ASSERT_TRUE(gen.next(a));
        stack.access(a);
        if (i % 10'000 == 0)
            expectInclusion(stack, i);
    }
    // The stress must actually have exercised the maintenance path.
    EXPECT_GT(stack.top().backInvalidations(), 0u);
}

TEST(Hierarchy, EventRingsReconcileWithCounters)
{
    trace::MarkovStream gen(trace::specProfile("mcf"));
    mem::FunctionalMemory memory;
    LevelStack stack(tightHierConfig(), memory);

    obs::EventRing l1_ring(1 << 12), l2_ring(1 << 12);
    stack.top().attachEventRing(&l1_ring);
    stack.level(1).attachEventRing(&l2_ring);

    trace::MemAccess a;
    for (int i = 0; i < 40'000; ++i) {
        ASSERT_TRUE(gen.next(a));
        stack.access(a);
    }
    stack.drain();

    const core::CacheController &l1 = stack.top();
    const core::CacheController &l2 = stack.level(1);

    // L1 lines disappear for exactly two reasons, and both record an
    // Eviction event: a fill evicting a victim, and an L2 eviction
    // back-invalidating the copy.
    EXPECT_EQ(l1_ring.typeCount(obs::EventType::Eviction),
              l1.tags().evictions() + l1.backInvalidations());
    EXPECT_GT(l1.backInvalidations(), 0u);

    // The L2 is the lowest level — nothing beneath it ever
    // back-invalidates it, so its ring carries fill evictions only.
    EXPECT_EQ(l2_ring.typeCount(obs::EventType::Eviction),
              l2.tags().evictions());
    EXPECT_EQ(l2.backInvalidations(), 0u);
}

TEST(Hierarchy, WritebackAccountingMatchesAcrossLevels)
{
    trace::MarkovStream gen(trace::specProfile("mcf"));
    mem::FunctionalMemory memory;
    ControllerConfig cfg = tightHierConfig();
    LevelStack stack(cfg, memory);

    trace::MemAccess a;
    for (int i = 0; i < 40'000; ++i) {
        ASSERT_TRUE(gen.next(a));
        stack.access(a);
    }

    const core::CacheController &l1 = stack.top();
    const core::CacheController &l2 = stack.level(1);

    // Every L1 miss fetches its block from the L2 as one read request;
    // every dirty L1 victim arrives as one word-granular write burst
    // (block / 8 writes). Nothing else generates L2 traffic.
    const std::uint64_t words_per_block = cfg.cache.blockBytes / 8;
    EXPECT_EQ(l2.readRequests(), l1.tags().misses());
    EXPECT_EQ(l2.writeRequests(),
              l1.tags().dirtyEvictions() * words_per_block);
    EXPECT_GT(l1.tags().dirtyEvictions(), 0u);
}

/** Run one spec through the shared job path at several worker counts
 *  and assert the canonical result documents are byte-identical. */
void
expectDocumentStableAcrossWorkers(const core::JobSpec &spec)
{
    const std::string doc1 = app::runJobSpec(spec, 1).document;
    for (unsigned workers : {2u, 8u}) {
        EXPECT_EQ(doc1, app::runJobSpec(spec, workers).document)
            << "workers=" << workers;
    }
}

TEST(Hierarchy, SingleLevelDocumentByteIdenticalAcrossWorkers)
{
    core::JobSpec spec;
    spec.workload = "spec:mcf";
    spec.accesses = 20'000;
    expectDocumentStableAcrossWorkers(spec);
}

TEST(Hierarchy, TwoLevelDocumentByteIdenticalAcrossWorkers)
{
    core::JobSpec spec;
    spec.workload = "spec:mcf";
    spec.accesses = 20'000;
    core::LevelSpec l2;
    l2.sizeKb = 128;
    spec.levels.push_back(l2);
    expectDocumentStableAcrossWorkers(spec);
}

} // anonymous namespace
