/**
 * @file
 * Unit tests for the c8tsim option parser and workload factory.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "app/options.hh"
#include "sram/vmodel.hh"

namespace
{

using namespace c8t::app;
using c8t::core::WriteScheme;
namespace core = c8t::core;
namespace mem = c8t::mem;

SimOptions
parse(std::initializer_list<const char *> args)
{
    std::vector<std::string> v;
    for (const char *a : args)
        v.emplace_back(a);
    return parseOptions(v);
}

TEST(Options, Defaults)
{
    const SimOptions o = parse({});
    EXPECT_EQ(o.workload, "spec:gcc");
    EXPECT_EQ(o.accesses, 1'000'000u);
    EXPECT_EQ(o.effectiveWarmup(), 100'000u);
    EXPECT_EQ(o.cache.sizeBytes, 64u * 1024);
    ASSERT_EQ(o.schemes.size(), 2u);
    EXPECT_EQ(o.schemes[0], WriteScheme::Rmw);
    EXPECT_EQ(o.schemes[1], WriteScheme::WriteGroupingReadBypass);
    EXPECT_TRUE(o.silentDetection);
    EXPECT_FALSE(o.help);
}

TEST(Options, CacheShape)
{
    const SimOptions o =
        parse({"--size", "32", "--ways", "8", "--block", "64",
               "--repl", "plru"});
    EXPECT_EQ(o.cache.sizeBytes, 32u * 1024);
    EXPECT_EQ(o.cache.ways, 8u);
    EXPECT_EQ(o.cache.blockBytes, 64u);
    EXPECT_EQ(o.cache.replacement, c8t::mem::ReplKind::TreePlru);
}

TEST(Options, SchemeSelection)
{
    const SimOptions o =
        parse({"--scheme", "WG", "--scheme", "RMW"});
    ASSERT_EQ(o.schemes.size(), 2u);
    EXPECT_EQ(o.schemes[0], WriteScheme::WriteGrouping);
    EXPECT_EQ(o.schemes[1], WriteScheme::Rmw);
}

TEST(Options, AllSchemes)
{
    const SimOptions o = parse({"--all"});
    EXPECT_EQ(o.schemes.size(), 6u);
}

TEST(Options, WarmupOverride)
{
    const SimOptions o =
        parse({"--accesses", "5000", "--warmup", "123"});
    EXPECT_EQ(o.accesses, 5000u);
    EXPECT_EQ(o.effectiveWarmup(), 123u);
}

TEST(Options, Toggles)
{
    const SimOptions o = parse({"--no-silent-detection", "--stats",
                                "--csv", "--buffer-entries", "4",
                                "--l2", "512"});
    EXPECT_FALSE(o.silentDetection);
    EXPECT_TRUE(o.dumpStats);
    EXPECT_TRUE(o.csv);
    EXPECT_EQ(o.bufferEntries, 4u);
    EXPECT_EQ(o.l2SizeKb, 512u);
}

TEST(Options, ObservabilityFlags)
{
    const SimOptions d = parse({});
    EXPECT_TRUE(d.statsJsonFile.empty());
    EXPECT_TRUE(d.chromeTraceFile.empty());
    EXPECT_EQ(d.traceEvents, 0u);
    EXPECT_TRUE(d.metricsOutFile.empty());
    EXPECT_TRUE(d.intervalStatsFile.empty());
    EXPECT_EQ(d.intervalAccesses, 100'000u);
    EXPECT_FALSE(d.progress);

    const SimOptions o = parse(
        {"--stats-json", "out.json", "--chrome-trace", "trace.json",
         "--trace-events", "4096", "--metrics-out", "metrics.prom",
         "--interval-stats", "ticks.jsonl",
         "--interval", "2500", "--progress"});
    EXPECT_EQ(o.statsJsonFile, "out.json");
    EXPECT_EQ(o.chromeTraceFile, "trace.json");
    EXPECT_EQ(o.traceEvents, 4096u);
    EXPECT_EQ(o.metricsOutFile, "metrics.prom");
    EXPECT_EQ(o.intervalStatsFile, "ticks.jsonl");
    EXPECT_EQ(o.intervalAccesses, 2500u);
    EXPECT_TRUE(o.progress);

    EXPECT_THROW(parse({"--interval", "0"}), std::invalid_argument);
    EXPECT_THROW(parse({"--stats-json"}), std::invalid_argument);
    EXPECT_THROW(parse({"--metrics-out"}), std::invalid_argument);
}

TEST(Options, L2DisabledByDefault)
{
    EXPECT_EQ(parse({}).l2SizeKb, 0u);
    EXPECT_TRUE(toJobSpec(parse({})).levels.empty());
}

TEST(Options, HierarchyFlags)
{
    const SimOptions o =
        parse({"--l2", "256", "--l2-ways", "16", "--l2-repl", "fifo",
               "--l2-scheme", "WG", "--l2-vdd", "0.75"});
    EXPECT_EQ(o.l2SizeKb, 256u);
    EXPECT_EQ(o.l2Ways, 16u);
    EXPECT_EQ(o.l2Repl, mem::ReplKind::Fifo);
    EXPECT_EQ(o.l2Scheme, core::WriteScheme::WriteGrouping);
    EXPECT_DOUBLE_EQ(o.l2Vdd, 0.75);

    // The spec translation carries the level through.
    const core::JobSpec spec = toJobSpec(o);
    ASSERT_EQ(spec.levels.size(), 1u);
    EXPECT_EQ(spec.levels[0].sizeKb, 256u);
    EXPECT_EQ(spec.levels[0].ways, 16u);
    EXPECT_EQ(spec.levels[0].repl, mem::ReplKind::Fifo);
    EXPECT_EQ(spec.levels[0].scheme, core::WriteScheme::WriteGrouping);
    EXPECT_DOUBLE_EQ(spec.levels[0].vdd, 0.75);
}

TEST(Options, L2KnobsRequireL2)
{
    EXPECT_THROW(parse({"--l2-ways", "16"}), std::invalid_argument);
    EXPECT_THROW(parse({"--l2-vdd", "0.8"}), std::invalid_argument);
    EXPECT_THROW(parse({"--l2", "256", "--l2-vdd", "0"}),
                 std::invalid_argument);
}

TEST(Options, ExploreL2Sizes)
{
    const SimOptions o =
        parse({"--explore", "--explore-l2-sizes", "128,256"});
    ASSERT_EQ(o.exploreL2SizesKb.size(), 2u);
    EXPECT_EQ(o.exploreL2SizesKb[0], 128u);
    EXPECT_EQ(o.exploreL2SizesKb[1], 256u);
    EXPECT_EQ(toJobSpec(o).exploreL2SizesKb, o.exploreL2SizesKb);
}

TEST(Options, StreamCacheBudget)
{
    // -1 = "not given": keep the C8T_STREAM_CACHE_MB / built-in
    // default resolution in StreamCache.
    EXPECT_EQ(parse({}).streamCacheMb, -1);
    EXPECT_EQ(parse({"--stream-cache", "256"}).streamCacheMb, 256);
    // 0 is valid and means "disable caching".
    EXPECT_EQ(parse({"--stream-cache", "0"}).streamCacheMb, 0);
    EXPECT_THROW(parse({"--stream-cache"}), std::invalid_argument);
    EXPECT_THROW(parse({"--stream-cache", "lots"}),
                 std::invalid_argument);
}

TEST(Options, HelpShortCircuitsValidation)
{
    // --help with a nonsense shape must not throw.
    EXPECT_NO_THROW(parse({"--help", "--size", "7"}));
    EXPECT_TRUE(parse({"-h"}).help);
}

TEST(Options, VoltageFlags)
{
    const SimOptions defaults = parse({});
    EXPECT_EQ(defaults.vdd, 0.0);
    EXPECT_FALSE(defaults.vddSweep);
    EXPECT_FALSE(defaults.schemesGiven);

    const SimOptions point = parse({"--vdd", "0.75"});
    EXPECT_DOUBLE_EQ(point.vdd, 0.75);
    EXPECT_FALSE(point.vddSweep);

    const SimOptions sweep = parse({"--vdd-sweep"});
    EXPECT_TRUE(sweep.vddSweep);
    EXPECT_FALSE(sweep.schemesGiven);

    // --scheme / --all mark the selection as explicit so a --vdd-sweep
    // can tell a deliberate scheme list from the two-scheme default.
    EXPECT_TRUE(parse({"--scheme", "WG"}).schemesGiven);
    EXPECT_TRUE(parse({"--all"}).schemesGiven);

    EXPECT_THROW(parse({"--vdd"}), std::invalid_argument);
    EXPECT_THROW(parse({"--vdd", "volts"}), std::invalid_argument);
    EXPECT_THROW(parse({"--vdd", "0.8x"}), std::invalid_argument);
    EXPECT_THROW(parse({"--vdd", "0"}), std::invalid_argument);
    EXPECT_THROW(parse({"--vdd", "-0.5"}), std::invalid_argument);
}

TEST(Options, ExplorerFlags)
{
    const SimOptions defaults = parse({});
    EXPECT_FALSE(defaults.explore);
    EXPECT_TRUE(defaults.exploreWorkloads.empty());
    EXPECT_EQ(defaults.exploreSizesKb,
              (std::vector<std::uint64_t>{16, 32, 64, 128}));
    EXPECT_EQ(defaults.exploreWays, (std::vector<std::uint32_t>{2, 4, 8}));
    EXPECT_EQ(defaults.exploreBlocks, (std::vector<std::uint32_t>{32, 64}));
    EXPECT_EQ(defaults.exploreRepls,
              (std::vector<c8t::mem::ReplKind>{c8t::mem::ReplKind::Lru}));
    EXPECT_TRUE(defaults.exploreVdd.empty());
    EXPECT_TRUE(defaults.checkpointDir.empty());
    EXPECT_EQ(defaults.shardCells, 8u);
    EXPECT_EQ(defaults.exploreMaxShards, 0u);

    const SimOptions o = parse(
        {"--explore", "--explore-workloads", "gcc,mcf",
         "--explore-sizes", "16,32", "--explore-ways", "2,4",
         "--explore-blocks", "32", "--explore-repl", "lru,fifo",
         "--explore-vdd", "1.0,0.8", "--checkpoint-dir", "/tmp/ckpt",
         "--shard-cells", "3", "--explore-max-shards", "2"});
    EXPECT_TRUE(o.explore);
    EXPECT_EQ(o.exploreWorkloads,
              (std::vector<std::string>{"gcc", "mcf"}));
    EXPECT_EQ(o.exploreSizesKb, (std::vector<std::uint64_t>{16, 32}));
    EXPECT_EQ(o.exploreWays, (std::vector<std::uint32_t>{2, 4}));
    EXPECT_EQ(o.exploreBlocks, (std::vector<std::uint32_t>{32}));
    EXPECT_EQ(o.exploreRepls,
              (std::vector<c8t::mem::ReplKind>{c8t::mem::ReplKind::Lru,
                                               c8t::mem::ReplKind::Fifo}));
    EXPECT_EQ(o.exploreVdd, (std::vector<double>{1.0, 0.8}));
    EXPECT_EQ(o.checkpointDir, "/tmp/ckpt");
    EXPECT_EQ(o.shardCells, 3u);
    EXPECT_EQ(o.exploreMaxShards, 2u);

    // Keyword values: "all" workloads = every profile (empty list),
    // "grid" = the default Vdd grid, "none" = nominal-only.
    EXPECT_TRUE(
        parse({"--explore-workloads", "all"}).exploreWorkloads.empty());
    EXPECT_EQ(parse({"--explore-vdd", "grid"}).exploreVdd,
              c8t::sram::VddModel::defaultGrid());
    EXPECT_TRUE(parse({"--explore-vdd", "none"}).exploreVdd.empty());

    EXPECT_THROW(parse({"--explore-sizes"}), std::invalid_argument);
    EXPECT_THROW(parse({"--explore-sizes", ""}), std::invalid_argument);
    EXPECT_THROW(parse({"--explore-sizes", "16,big"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--explore-repl", "mru"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--explore-vdd", "volts"}),
                 std::invalid_argument);
    EXPECT_THROW(parse({"--shard-cells", "0"}), std::invalid_argument);
}

TEST(Options, Errors)
{
    EXPECT_THROW(parse({"--bogus"}), std::invalid_argument);
    EXPECT_THROW(parse({"--accesses"}), std::invalid_argument);
    EXPECT_THROW(parse({"--accesses", "abc"}), std::invalid_argument);
    EXPECT_THROW(parse({"--accesses", "0"}), std::invalid_argument);
    EXPECT_THROW(parse({"--scheme", "XYZ"}), std::invalid_argument);
    EXPECT_THROW(parse({"--repl", "mru"}), std::invalid_argument);
    EXPECT_THROW(parse({"--buffer-entries", "0"}),
                 std::invalid_argument);
    // Invalid cache shape caught by validation.
    EXPECT_THROW(parse({"--block", "24"}), std::invalid_argument);
}

TEST(Options, UsageMentionsEveryFlag)
{
    const std::string u = usageText();
    for (const char *flag :
         {"--workload", "--accesses", "--warmup", "--record", "--size",
          "--ways", "--block", "--repl", "--scheme", "--all",
          "--buffer-entries", "--no-silent-detection", "--l2",
          "--l2-ways", "--l2-repl", "--l2-scheme", "--l2-vdd",
          "--explore-l2-sizes",
          "--stats", "--stats-json", "--csv", "--chrome-trace",
          "--trace-events", "--metrics-out", "--interval-stats", "--interval",
          "--progress", "--jobs", "--stream-cache", "--vdd",
          "--vdd-sweep", "--explore", "--explore-workloads",
          "--explore-sizes", "--explore-ways", "--explore-blocks",
          "--explore-repl", "--explore-vdd", "--checkpoint-dir",
          "--shard-cells", "--explore-max-shards"}) {
        EXPECT_NE(u.find(flag), std::string::npos) << flag;
    }
}

TEST(Workloads, SpecFactory)
{
    auto w = makeWorkload("spec:bwaves");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), "bwaves");
    c8t::trace::MemAccess a;
    EXPECT_TRUE(w->next(a));
}

TEST(Workloads, KernelFactory)
{
    for (const auto &name : kernelNames()) {
        auto w = makeWorkload("kernel:" + name);
        ASSERT_NE(w, nullptr) << name;
        EXPECT_EQ(w->name(), name);
        c8t::trace::MemAccess a;
        EXPECT_TRUE(w->next(a)) << name;
    }
}

TEST(Workloads, Errors)
{
    EXPECT_THROW(makeWorkload("nonsense"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("spec:dealII"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("kernel:bogus"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("mars:rover"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("trace:/no/such/file.trc"),
                 std::runtime_error);
}

} // anonymous namespace
