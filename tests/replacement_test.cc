/**
 * @file
 * Unit and property tests for the replacement policies.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "mem/replacement.hh"

namespace
{

using namespace c8t::mem;

TEST(ReplKind, NamesRoundTrip)
{
    for (ReplKind k : {ReplKind::Lru, ReplKind::TreePlru, ReplKind::Fifo,
                       ReplKind::Random}) {
        EXPECT_EQ(parseReplKind(toString(k)), k);
    }
    EXPECT_THROW(parseReplKind("mru"), std::invalid_argument);
}

TEST(Lru, PrefersInvalidWays)
{
    LruPolicy p(4, 4);
    p.touch(0, 0);
    // Way 2 invalid => victim must be 2 even though 0 was touched.
    EXPECT_EQ(p.victim(0, 0b1011), 2u);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy p(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.insert(0, w);
    p.touch(0, 0); // order now: 1 oldest, then 2, 3, 0
    EXPECT_EQ(p.victim(0, 0b1111), 1u);
    p.touch(0, 1);
    EXPECT_EQ(p.victim(0, 0b1111), 2u);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy p(2, 2);
    p.insert(0, 0);
    p.insert(0, 1);
    p.insert(1, 1);
    p.insert(1, 0);
    p.touch(0, 0);
    p.touch(1, 1);
    EXPECT_EQ(p.victim(0, 0b11), 1u);
    EXPECT_EQ(p.victim(1, 0b11), 0u);
}

TEST(TreePlru, VictimIsNeverMostRecentlyUsed)
{
    TreePlruPolicy p(1, 8);
    for (std::uint32_t w = 0; w < 8; ++w)
        p.insert(0, w);
    for (int round = 0; round < 100; ++round) {
        const std::uint32_t mru = round % 8;
        p.touch(0, mru);
        EXPECT_NE(p.victim(0, 0xff), mru);
    }
}

TEST(TreePlru, PrefersInvalidWays)
{
    TreePlruPolicy p(1, 4);
    p.touch(0, 3);
    EXPECT_EQ(p.victim(0, 0b0111), 3u);
}

TEST(TreePlru, CyclesThroughAllWaysUnderInsertion)
{
    // Repeatedly inserting at the victim touches every way eventually.
    TreePlruPolicy p(1, 4);
    std::set<std::uint32_t> victims;
    std::uint64_t valid = 0;
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t v = p.victim(0, valid);
        victims.insert(v);
        valid |= 1ull << v;
        p.insert(0, v);
    }
    EXPECT_EQ(victims.size(), 4u);
}

TEST(Fifo, EvictsInFillOrderIgnoringTouches)
{
    FifoPolicy p(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.insert(0, w);
    p.touch(0, 0); // FIFO must ignore this
    EXPECT_EQ(p.victim(0, 0b1111), 0u);
    p.insert(0, 0); // refill 0 => next victim is 1
    EXPECT_EQ(p.victim(0, 0b1111), 1u);
}

TEST(Random, DeterministicGivenSeed)
{
    RandomPolicy a(1, 8, 99), b(1, 8, 99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.victim(0, 0xff), b.victim(0, 0xff));
}

TEST(Random, CoversAllWays)
{
    RandomPolicy p(1, 4, 7);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(p.victim(0, 0b1111));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Factory, ConstructsEveryKind)
{
    for (ReplKind k : {ReplKind::Lru, ReplKind::TreePlru, ReplKind::Fifo,
                       ReplKind::Random}) {
        auto p = makeReplacementPolicy(k, 8, 4);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), toString(k));
    }
}

/**
 * Property: across all policies, a victim is always a legal way and
 * invalid ways are always preferred.
 */
class PolicyProperty : public ::testing::TestWithParam<ReplKind>
{};

TEST_P(PolicyProperty, VictimAlwaysLegal)
{
    auto p = makeReplacementPolicy(GetParam(), 16, 4, 5);
    for (std::uint32_t set = 0; set < 16; ++set) {
        for (int i = 0; i < 50; ++i) {
            const std::uint32_t v = p->victim(set, 0b1111);
            EXPECT_LT(v, 4u);
            p->touch(set, v);
        }
    }
}

TEST_P(PolicyProperty, InvalidWaysFirst)
{
    auto p = makeReplacementPolicy(GetParam(), 4, 4, 5);
    p->insert(0, 0);
    p->insert(0, 1);
    const std::uint32_t v = p->victim(0, 0b0011); // ways 2,3 invalid
    EXPECT_GE(v, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty,
                         ::testing::Values(ReplKind::Lru,
                                           ReplKind::TreePlru,
                                           ReplKind::Fifo,
                                           ReplKind::Random),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

} // anonymous namespace
