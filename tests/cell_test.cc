/**
 * @file
 * Unit tests for the 6T/8T cell models (functional behaviour and the
 * analytic stability/Vmin model — the paper's motivation).
 */

#include <gtest/gtest.h>

#include "sram/cell.hh"

namespace
{

using namespace c8t::sram;

TEST(Cell6T, WriteAndReadAtNominalVoltage)
{
    Cell6T c;
    c.write(true);
    EXPECT_TRUE(c.read(1.0, 0.8));
    EXPECT_TRUE(c.value()); // non-destructive at nominal Vdd
}

TEST(Cell6T, ReadDisturbFlipsBelowStableVoltage)
{
    Cell6T c;
    c.write(true);
    EXPECT_TRUE(c.read(0.6, 0.8)); // sensed value is pre-disturb
    EXPECT_FALSE(c.value());       // but the cell flipped
}

TEST(Cell6T, HalfSelectBehavesLikeRead)
{
    Cell6T c;
    c.write(true);
    c.halfSelect(0.6, 0.8);
    EXPECT_FALSE(c.value()); // disturbed
    Cell6T d;
    d.write(true);
    d.halfSelect(1.0, 0.8);
    EXPECT_TRUE(d.value()); // safe at nominal voltage
}

TEST(Cell8T, ReadNeverDisturbs)
{
    Cell8T c;
    c.write(true);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(c.read());
    EXPECT_TRUE(c.value());
}

TEST(Cell8T, HalfSelectWriteClobbersWithBitlineValue)
{
    // The column-selection problem in one cell: a half-selected 8T cell
    // takes whatever its write bit lines carry.
    Cell8T c;
    c.write(true);
    c.halfSelectWrite(false);
    EXPECT_FALSE(c.value());
}

TEST(Stability, EightTReadMarginEqualsHoldMargin)
{
    for (double v : {0.6, 0.8, 1.0}) {
        EXPECT_DOUBLE_EQ(noiseMargin(CellType::EightT, CellOp::Read, v),
                         noiseMargin(CellType::EightT, CellOp::Hold, v));
    }
}

TEST(Stability, SixTReadMarginWellBelowHold)
{
    const double read = noiseMargin(CellType::SixT, CellOp::Read, 1.0);
    const double hold = noiseMargin(CellType::SixT, CellOp::Hold, 1.0);
    EXPECT_LT(read, hold * 0.6);
}

TEST(Stability, MarginsShrinkWithVoltage)
{
    for (CellType t : {CellType::SixT, CellType::EightT}) {
        for (CellOp op : {CellOp::Hold, CellOp::Read, CellOp::Write}) {
            EXPECT_LT(noiseMargin(t, op, 0.7), noiseMargin(t, op, 1.0));
        }
    }
}

TEST(Stability, MarginZeroAtThreshold)
{
    StabilityParams p;
    EXPECT_DOUBLE_EQ(noiseMargin(CellType::SixT, CellOp::Read, p.vth, p),
                     0.0);
}

TEST(Stability, FailureProbabilityMonotoneInVoltage)
{
    double prev = 1.0;
    for (double v = 0.5; v <= 1.2; v += 0.1) {
        const double pf =
            failureProbability(CellType::SixT, CellOp::Read, v);
        EXPECT_LE(pf, prev + 1e-12);
        prev = pf;
    }
}

TEST(Stability, EightTFailsLessThanSixTAtLowVoltage)
{
    for (double v : {0.5, 0.6, 0.7, 0.8}) {
        EXPECT_LT(failureProbability(CellType::EightT, CellOp::Read, v),
                  failureProbability(CellType::SixT, CellOp::Read, v));
    }
}

TEST(Vmin, EightTScalesLowerThanSixT)
{
    // The paper's whole premise: the 8T cell's Vmin is lower.
    const double target = 1e-6;
    const double v6 = vmin(CellType::SixT, target);
    const double v8 = vmin(CellType::EightT, target);
    EXPECT_LT(v8, v6);
    EXPECT_GT(v6 - v8, 0.05); // a meaningful scaling headroom
}

TEST(Vmin, MeetsTheTargetItReports)
{
    const double target = 1e-6;
    for (CellType t : {CellType::SixT, CellType::EightT}) {
        const double v = vmin(t, target);
        for (CellOp op : {CellOp::Hold, CellOp::Read, CellOp::Write})
            EXPECT_LE(failureProbability(t, op, v), target * 1.01);
    }
}

TEST(Vmin, TighterTargetNeedsHigherVoltage)
{
    EXPECT_GT(vmin(CellType::SixT, 1e-9), vmin(CellType::SixT, 1e-3));
}

TEST(CellType, Names)
{
    EXPECT_STREQ(toString(CellType::SixT), "6T");
    EXPECT_STREQ(toString(CellType::EightT), "8T");
}

} // anonymous namespace
