/**
 * @file
 * Tests for the SPEC CPU2006 profile table: the paper's anchors and
 * averages must hold for the configured targets.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t::trace;

TEST(SpecProfiles, TwentyFiveBenchmarks)
{
    EXPECT_EQ(specProfiles().size(), 25u);
    EXPECT_EQ(specBenchmarkNames().size(), 25u);
}

TEST(SpecProfiles, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &p : specProfiles())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(SpecProfiles, AllValidate)
{
    for (const auto &p : specProfiles())
        EXPECT_NO_THROW(p.validate()) << p.name;
}

TEST(SpecProfiles, LookupByName)
{
    EXPECT_EQ(specProfile("bwaves").name, "bwaves");
    EXPECT_EQ(specProfile("lbm").name, "lbm");
    EXPECT_THROW(specProfile("dealII"), std::out_of_range);
    EXPECT_THROW(specProfile("nonsense"), std::out_of_range);
}

TEST(SpecProfiles, SeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (const auto &p : specProfiles())
        EXPECT_TRUE(seeds.insert(p.seed).second) << p.name;
}

TEST(SpecProfiles, AverageMemoryMixMatchesFigure3)
{
    // Paper: on average 26 % reads + 14 % writes of instructions.
    double rd = 0, wr = 0;
    for (const auto &p : specProfiles()) {
        rd += p.memFraction * p.readShare;
        wr += p.memFraction * p.writeShare();
    }
    rd /= specProfiles().size();
    wr /= specProfiles().size();
    EXPECT_NEAR(rd, 0.26, 0.02);
    EXPECT_NEAR(wr, 0.14, 0.02);
}

TEST(SpecProfiles, AverageSameSetShareMatchesFigure4)
{
    // Paper: on average 27 % of consecutive accesses share a set.
    double same = 0;
    for (const auto &p : specProfiles())
        same += p.sameSetShare();
    same /= specProfiles().size();
    EXPECT_NEAR(same, 0.27, 0.03);
}

TEST(SpecProfiles, AverageSilentFractionMatchesFigure5)
{
    // Paper: more than 42 % of writes are silent on average.
    double silent = 0;
    for (const auto &p : specProfiles())
        silent += p.silentFraction;
    silent /= specProfiles().size();
    EXPECT_NEAR(silent, 0.45, 0.04);
    EXPECT_GT(silent, 0.42);
}

TEST(SpecProfiles, BwavesAnchors)
{
    // Paper text: bwaves writes exceed 22 % of instructions, WW share
    // is the highest (24 %), silent fraction 77 %.
    const StreamParams &b = specProfile("bwaves");
    EXPECT_GE(b.memFraction * b.writeShare(), 0.22 - 1e-9);
    EXPECT_NEAR(b.ww, 0.24, 1e-9);
    EXPECT_NEAR(b.silentFraction, 0.77, 1e-9);
    for (const auto &p : specProfiles())
        EXPECT_LE(p.ww, b.ww) << p.name;
}

TEST(SpecProfiles, WrfAndLbmAreWriteGroupingFriendly)
{
    // Paper: "Similar conclusions can be made for wrf and lbm."
    for (const char *name : {"wrf", "lbm"}) {
        const StreamParams &p = specProfile(name);
        EXPECT_GT(p.ww, 0.15) << name;
        EXPECT_GT(p.silentFraction, 0.6) << name;
    }
}

TEST(SpecProfiles, GamessAndCactusAreReadReuseHeavy)
{
    // Paper: gamess and cactusADM benefit more from RB because their
    // RR share is higher than others'.
    double avg_rr = 0;
    for (const auto &p : specProfiles())
        avg_rr += p.rr;
    avg_rr /= specProfiles().size();
    EXPECT_GT(specProfile("gamess").rr, avg_rr * 1.4);
    EXPECT_GT(specProfile("cactusADM").rr, avg_rr * 1.4);
}

TEST(SpecProfiles, ExcludedBenchmarksAbsent)
{
    for (const char *name : {"dealII", "tonto", "omnetpp", "xalancbmk"})
        EXPECT_THROW(specProfile(name), std::out_of_range) << name;
}

TEST(SpecProfiles, StreamsConstructible)
{
    for (const auto &p : specProfiles()) {
        MarkovStream g(p);
        MemAccess a;
        EXPECT_TRUE(g.next(a)) << p.name;
        EXPECT_EQ(g.name(), p.name);
    }
}

} // anonymous namespace
