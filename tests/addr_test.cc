/**
 * @file
 * Unit tests for address decomposition.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "mem/addr.hh"

namespace
{

using namespace c8t::mem;

TEST(PowerOfTwo, Basics)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(48));
}

TEST(Log2i, KnownValues)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(32), 5u);
    EXPECT_EQ(log2i(512), 9u);
}

TEST(AddrLayout, BaselineGeometry)
{
    // The paper's baseline: 64 KB / 4-way / 32 B => 512 sets.
    AddrLayout layout(32, 512);
    EXPECT_EQ(layout.offsetBits(), 5u);
    EXPECT_EQ(layout.setBits(), 9u);
    EXPECT_EQ(layout.tagBits(), 48u - 5u - 9u);
}

TEST(AddrLayout, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(AddrLayout(33, 512), std::invalid_argument);
    EXPECT_THROW(AddrLayout(32, 500), std::invalid_argument);
}

TEST(AddrLayout, Decomposition)
{
    AddrLayout layout(32, 512);
    const Addr a = 0x12345678;
    EXPECT_EQ(layout.blockAlign(a), 0x12345660u);
    EXPECT_EQ(layout.blockOffset(a), 0x18u);
    EXPECT_EQ(layout.setOf(a), (0x12345678u >> 5) & 511u);
    EXPECT_EQ(layout.tagOf(a), 0x12345678ull >> 14);
}

TEST(AddrLayout, RebuildRoundTrips)
{
    AddrLayout layout(32, 512);
    for (Addr a : {Addr{0}, Addr{0x1fff}, Addr{0xdeadbeef},
                   Addr{0x0000ffffffffffull}}) {
        const Addr block = layout.blockAlign(a);
        const Addr rebuilt =
            layout.blockAddr(layout.tagOf(a), layout.setOf(a));
        EXPECT_EQ(rebuilt, block);
    }
}

TEST(AddrLayout, AdjacentBlocksAdjacentSets)
{
    AddrLayout layout(32, 512);
    const Addr a = 0x10000;
    EXPECT_EQ(layout.setOf(a + 32), (layout.setOf(a) + 1) % 512);
}

TEST(AddrLayout, SetWrapsAcrossTagBoundary)
{
    AddrLayout layout(32, 512);
    // Addresses one full set-span apart share the set index.
    const Addr span = 32ull * 512ull;
    EXPECT_EQ(layout.setOf(0x40), layout.setOf(0x40 + span));
    EXPECT_NE(layout.tagOf(0x40), layout.tagOf(0x40 + span));
}

TEST(AddrLayout, LargerBlocksMergeSets)
{
    // Two addresses in different 32 B reference blocks can share a
    // 64 B block — the Figure 10 mechanism.
    AddrLayout small(32, 512);
    AddrLayout big(64, 128);
    const Addr a = 0x1000;
    const Addr b = 0x1020; // next 32 B block
    EXPECT_NE(small.setOf(a), small.setOf(b));
    EXPECT_EQ(big.setOf(a), big.setOf(b));
}

} // anonymous namespace
