/**
 * @file
 * The paper's Figure 8 worked example, executed literally.
 *
 * Request stream (arrival order): Ra, Wb, Wb, Rb, Rb, Wb, Wa, Rb, Ra,
 * with the Wa silent, all blocks pre-resident, Tag-Buffer initially
 * empty. The expected access counts per scheme are derived step by
 * step in the paper's §4.3 narrative; this test pins each step.
 */

#include <gtest/gtest.h>

#include "core/controller.hh"

namespace
{

using namespace c8t::core;
using c8t::mem::FunctionalMemory;
using c8t::trace::AccessType;
using c8t::trace::MemAccess;

constexpr std::uint64_t blockA = 0x20000; // set 0 of the baseline cache
constexpr std::uint64_t blockB = 0x20040; // set 2: a different set

MemAccess
R(std::uint64_t addr)
{
    MemAccess a;
    a.addr = addr;
    return a;
}

MemAccess
W(std::uint64_t addr, std::uint64_t data)
{
    MemAccess a;
    a.addr = addr;
    a.type = AccessType::Write;
    a.data = data;
    return a;
}

/** The Figure 8 stream. Wa writes 0 to zero-initialised memory, which
 *  makes it silent, matching the paper's assumption. */
std::vector<MemAccess>
figure8Stream()
{
    return {
        R(blockA),     // Ra   — Tag-Buffer miss, cache access
        W(blockB, 1),  // Wb   — read row b, fill Set-Buffer
        W(blockB, 2),  // Wb   — Tag-Buffer hit, non-silent: Dirty
        R(blockB),     // Rb   — hit: premature write-back + read (WG)
        R(blockB),     // Rb   — hit, Dirty clear: read only (WG)
        W(blockB, 3),  // Wb   — hit: update, Dirty set
        W(blockA, 0),  // Wa   — miss: write back b, read row a; silent
        R(blockB),     // Rb   — Tag-Buffer miss: cache access
        R(blockA),     // Ra   — hit, Dirty clear: no write-back
    };
}

class Figure8 : public ::testing::Test
{
  protected:
    CacheController
    make(WriteScheme scheme)
    {
        ControllerConfig cfg;
        cfg.scheme = scheme;
        CacheController c(cfg, mem);
        // Pre-warm both blocks with reads (reads never allocate buffer
        // entries), then reset so the example starts clean.
        c.access(R(blockA));
        c.access(R(blockB));
        c.resetStats();
        return c;
    }

    FunctionalMemory mem;
};

TEST_F(Figure8, RmwRow)
{
    // Figure 8 second row: each write preceded by a read.
    auto c = make(WriteScheme::Rmw);
    for (const auto &a : figure8Stream())
        c.access(a);
    // 5 reads x 1 + 4 writes x 2 = 13 accesses.
    EXPECT_EQ(c.demandRowReads(), 5u + 4u);
    EXPECT_EQ(c.demandRowWrites(), 4u);
    EXPECT_EQ(c.demandAccesses(), 13u);
}

TEST_F(Figure8, WgRow)
{
    auto c = make(WriteScheme::WriteGrouping);
    const auto stream = figure8Stream();

    // Step-by-step narrative from the paper.
    c.access(stream[0]); // Ra: Tag-Buffer miss, cache accessed
    EXPECT_EQ(c.demandAccesses(), 1u);

    c.access(stream[1]); // Wb: read row, fill Set-Buffer
    EXPECT_EQ(c.demandRowReads(), 2u);
    EXPECT_EQ(c.demandRowWrites(), 0u);

    c.access(stream[2]); // Wb: grouped, Dirty set
    EXPECT_EQ(c.groupedWrites(), 1u);
    EXPECT_EQ(c.demandAccesses(), 2u);

    c.access(stream[3]); // Rb: premature write-back + read
    EXPECT_EQ(c.prematureWritebacks(), 1u);
    EXPECT_EQ(c.demandRowWrites(), 1u);
    EXPECT_EQ(c.demandRowReads(), 3u);

    c.access(stream[4]); // Rb: Dirty clear, read only
    EXPECT_EQ(c.demandRowWrites(), 1u);
    EXPECT_EQ(c.demandRowReads(), 4u);

    c.access(stream[5]); // Wb: grouped again, Dirty set
    EXPECT_EQ(c.groupedWrites(), 2u);
    EXPECT_EQ(c.demandAccesses(), 5u);

    c.access(stream[6]); // Wa: write back b, read row a; Wa silent
    EXPECT_EQ(c.groupWritebacks(), 1u);
    EXPECT_EQ(c.silentWritesDetected(), 1u);
    EXPECT_EQ(c.demandRowWrites(), 2u);
    EXPECT_EQ(c.demandRowReads(), 5u);

    c.access(stream[7]); // Rb: Tag-Buffer miss, cache access
    EXPECT_EQ(c.demandRowReads(), 6u);

    c.access(stream[8]); // Ra: hit but Dirty clear — no write-back
    EXPECT_EQ(c.demandRowWrites(), 2u);
    EXPECT_EQ(c.demandRowReads(), 7u);

    // WG total: 9 accesses vs RMW's 13.
    EXPECT_EQ(c.demandAccesses(), 9u);
}

TEST_F(Figure8, WgRbRow)
{
    auto c = make(WriteScheme::WriteGroupingReadBypass);
    const auto stream = figure8Stream();

    c.access(stream[0]); // Ra: miss in Tag-Buffer, cache access
    c.access(stream[1]); // Wb: read row, fill buffer
    c.access(stream[2]); // Wb: grouped
    EXPECT_EQ(c.demandAccesses(), 2u);

    c.access(stream[3]); // Rb: bypassed!
    c.access(stream[4]); // Rb: bypassed!
    EXPECT_EQ(c.bypassedReads(), 2u);
    EXPECT_EQ(c.prematureWritebacks(), 0u);
    EXPECT_EQ(c.demandAccesses(), 2u);

    c.access(stream[5]); // Wb: grouped
    c.access(stream[6]); // Wa: "the write back happens before Wa"
    EXPECT_EQ(c.groupWritebacks(), 1u);
    EXPECT_EQ(c.demandRowWrites(), 1u);
    EXPECT_EQ(c.demandRowReads(), 3u);

    c.access(stream[7]); // Rb: Tag-Buffer miss, cache access
    EXPECT_EQ(c.demandRowReads(), 4u);

    // "The last request (Ra) is eliminated as it hits in the
    // Tag-Buffer and is bypassed by WG+RB."
    const AccessOutcome last = c.access(stream[8]);
    EXPECT_TRUE(last.bypassed);
    EXPECT_EQ(c.bypassedReads(), 3u);

    // WG+RB total: 5 accesses vs WG's 9 and RMW's 13.
    EXPECT_EQ(c.demandAccesses(), 5u);
}

TEST_F(Figure8, AllSchemesReturnTheSameReadValues)
{
    std::vector<std::vector<std::uint64_t>> values;
    for (WriteScheme s : {WriteScheme::Rmw, WriteScheme::WriteGrouping,
                          WriteScheme::WriteGroupingReadBypass}) {
        FunctionalMemory local;
        ControllerConfig cfg;
        cfg.scheme = s;
        CacheController c(cfg, local);
        c.access(R(blockA));
        c.access(R(blockB));

        std::vector<std::uint64_t> v;
        for (const auto &a : figure8Stream()) {
            const AccessOutcome out = c.access(a);
            if (a.isRead())
                v.push_back(out.data);
        }
        values.push_back(std::move(v));
    }
    EXPECT_EQ(values[0], values[1]);
    EXPECT_EQ(values[0], values[2]);
    // And the reads of block B observe the grouped writes.
    EXPECT_EQ(values[0][1], 2u); // first Rb after Wb(1), Wb(2)
    EXPECT_EQ(values[0][3], 3u); // Rb after Wb(3)
}

} // anonymous namespace
