/**
 * @file
 * Unit tests for the flat open-addressing WordMap backing the
 * functional memory and the Markov stream's shadow state.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/word_map.hh"
#include "trace/rng.hh"

namespace
{

using c8t::mem::WordMap;

TEST(WordMap, EmptyMapReadsAsZero)
{
    const WordMap m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.get(0), 0u);
    EXPECT_EQ(m.get(0x1000), 0u);
    EXPECT_FALSE(m.contains(0x1000));
}

TEST(WordMap, RoundTrip)
{
    WordMap m;
    m.set(0x40, 1);
    m.set(0x48, 2);
    m.set(0x40, 3); // overwrite
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.get(0x40), 3u);
    EXPECT_EQ(m.get(0x48), 2u);
    EXPECT_EQ(m.get(0x50), 0u);
}

TEST(WordMap, ZeroValuesAreStoredEntries)
{
    WordMap m;
    m.set(0x80, 0);
    EXPECT_TRUE(m.contains(0x80));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.get(0x80), 0u);
}

TEST(WordMap, EraseRemovesAndIsIdempotent)
{
    WordMap m;
    m.set(0x10, 7);
    m.set(0x18, 8);
    m.erase(0x10);
    EXPECT_FALSE(m.contains(0x10));
    EXPECT_EQ(m.get(0x10), 0u);
    EXPECT_EQ(m.get(0x18), 8u);
    EXPECT_EQ(m.size(), 1u);
    m.erase(0x10); // absent: no-op
    m.erase(0x20); // never present: no-op
    EXPECT_EQ(m.size(), 1u);
}

TEST(WordMap, EraseKeepsCollidingChainsReachable)
{
    // Force many keys through a small table so probe chains wrap and
    // backward-shift deletion gets exercised across the boundary.
    WordMap m;
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 48; ++i)
        keys.push_back(i * 8);
    for (std::uint64_t k : keys)
        m.set(k, k + 1);

    // Delete every third key, then verify every survivor is intact.
    for (std::size_t i = 0; i < keys.size(); i += 3)
        m.erase(keys[i]);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i % 3 == 0) {
            EXPECT_FALSE(m.contains(keys[i])) << "key " << keys[i];
        } else {
            EXPECT_EQ(m.get(keys[i]), keys[i] + 1) << "key " << keys[i];
        }
    }
}

TEST(WordMap, ClearKeepsCapacityAndEmptiesMap)
{
    WordMap m;
    for (std::uint64_t i = 0; i < 100; ++i)
        m.set(i * 8, i);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.get(0x40), 0u);
    m.set(0x40, 9);
    EXPECT_EQ(m.get(0x40), 9u);
}

TEST(WordMap, ReservePreservesContents)
{
    WordMap m;
    for (std::uint64_t i = 0; i < 20; ++i)
        m.set(i * 8, ~i);
    m.reserve(1 << 16);
    EXPECT_EQ(m.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(m.get(i * 8), ~i);
}

TEST(WordMap, ForEachVisitsEveryEntryOnce)
{
    WordMap m;
    for (std::uint64_t i = 0; i < 33; ++i)
        m.set(i * 8, i);
    std::uint64_t count = 0, key_sum = 0;
    m.forEach([&](std::uint64_t k, std::uint64_t v) {
        ++count;
        key_sum += k;
        EXPECT_EQ(v, k / 8);
    });
    EXPECT_EQ(count, 33u);
    EXPECT_EQ(key_sum, 8u * (32u * 33u / 2u));
}

TEST(WordMap, RandomizedCrossCheckAgainstUnorderedMap)
{
    // Mixed inserts / overwrites / erases over a small key space so
    // collisions, growth and deletion interleave heavily.
    c8t::trace::Rng rng(12345);
    WordMap m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    for (int op = 0; op < 200'000; ++op) {
        const std::uint64_t key = rng.below(4096) * 8;
        switch (rng.below(3)) {
          case 0:
          case 1: {
            const std::uint64_t value = rng.next();
            m.set(key, value);
            ref[key] = value;
            break;
          }
          default:
            m.erase(key);
            ref.erase(key);
            break;
        }
    }

    ASSERT_EQ(m.size(), ref.size());
    for (const auto &[k, v] : ref)
        ASSERT_EQ(m.get(k), v) << "key " << k;
    for (std::uint64_t k = 0; k < 4096 * 8; k += 8) {
        ASSERT_EQ(m.contains(k), ref.count(k) != 0) << "key " << k;
        if (!ref.count(k))
            ASSERT_EQ(m.get(k), 0u) << "key " << k;
    }
}

} // anonymous namespace
