# Empty dependencies file for example_stream_test.
# This may be replaced when dependencies are built.
