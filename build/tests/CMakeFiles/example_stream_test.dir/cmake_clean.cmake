file(REMOVE_RECURSE
  "CMakeFiles/example_stream_test.dir/example_stream_test.cc.o"
  "CMakeFiles/example_stream_test.dir/example_stream_test.cc.o.d"
  "example_stream_test"
  "example_stream_test.pdb"
  "example_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
