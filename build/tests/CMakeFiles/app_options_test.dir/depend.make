# Empty dependencies file for app_options_test.
# This may be replaced when dependencies are built.
