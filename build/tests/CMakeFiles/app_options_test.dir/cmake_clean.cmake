file(REMOVE_RECURSE
  "CMakeFiles/app_options_test.dir/app_options_test.cc.o"
  "CMakeFiles/app_options_test.dir/app_options_test.cc.o.d"
  "app_options_test"
  "app_options_test.pdb"
  "app_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
