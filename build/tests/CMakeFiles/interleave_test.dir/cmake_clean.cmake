file(REMOVE_RECURSE
  "CMakeFiles/interleave_test.dir/interleave_test.cc.o"
  "CMakeFiles/interleave_test.dir/interleave_test.cc.o.d"
  "interleave_test"
  "interleave_test.pdb"
  "interleave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
