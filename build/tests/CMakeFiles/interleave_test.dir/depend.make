# Empty dependencies file for interleave_test.
# This may be replaced when dependencies are built.
