file(REMOVE_RECURSE
  "CMakeFiles/write_scheme_test.dir/write_scheme_test.cc.o"
  "CMakeFiles/write_scheme_test.dir/write_scheme_test.cc.o.d"
  "write_scheme_test"
  "write_scheme_test.pdb"
  "write_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
