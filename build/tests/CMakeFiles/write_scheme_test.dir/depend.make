# Empty dependencies file for write_scheme_test.
# This may be replaced when dependencies are built.
