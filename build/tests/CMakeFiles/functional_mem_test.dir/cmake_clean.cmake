file(REMOVE_RECURSE
  "CMakeFiles/functional_mem_test.dir/functional_mem_test.cc.o"
  "CMakeFiles/functional_mem_test.dir/functional_mem_test.cc.o.d"
  "functional_mem_test"
  "functional_mem_test.pdb"
  "functional_mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
