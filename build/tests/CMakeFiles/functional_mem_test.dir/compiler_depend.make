# Empty compiler generated dependencies file for functional_mem_test.
# This may be replaced when dependencies are built.
