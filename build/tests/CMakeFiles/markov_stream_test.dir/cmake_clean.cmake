file(REMOVE_RECURSE
  "CMakeFiles/markov_stream_test.dir/markov_stream_test.cc.o"
  "CMakeFiles/markov_stream_test.dir/markov_stream_test.cc.o.d"
  "markov_stream_test"
  "markov_stream_test.pdb"
  "markov_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
