# Empty dependencies file for markov_stream_test.
# This may be replaced when dependencies are built.
