file(REMOVE_RECURSE
  "CMakeFiles/timing_core_test.dir/timing_core_test.cc.o"
  "CMakeFiles/timing_core_test.dir/timing_core_test.cc.o.d"
  "timing_core_test"
  "timing_core_test.pdb"
  "timing_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
