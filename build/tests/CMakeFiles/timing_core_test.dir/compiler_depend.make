# Empty compiler generated dependencies file for timing_core_test.
# This may be replaced when dependencies are built.
