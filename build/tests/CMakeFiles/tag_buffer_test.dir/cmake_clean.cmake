file(REMOVE_RECURSE
  "CMakeFiles/tag_buffer_test.dir/tag_buffer_test.cc.o"
  "CMakeFiles/tag_buffer_test.dir/tag_buffer_test.cc.o.d"
  "tag_buffer_test"
  "tag_buffer_test.pdb"
  "tag_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
