# Empty compiler generated dependencies file for spec_profiles_test.
# This may be replaced when dependencies are built.
