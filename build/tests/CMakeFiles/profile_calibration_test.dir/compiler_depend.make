# Empty compiler generated dependencies file for profile_calibration_test.
# This may be replaced when dependencies are built.
