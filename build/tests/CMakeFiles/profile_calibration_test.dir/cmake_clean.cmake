file(REMOVE_RECURSE
  "CMakeFiles/profile_calibration_test.dir/profile_calibration_test.cc.o"
  "CMakeFiles/profile_calibration_test.dir/profile_calibration_test.cc.o.d"
  "profile_calibration_test"
  "profile_calibration_test.pdb"
  "profile_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
