file(REMOVE_RECURSE
  "CMakeFiles/write_assist_test.dir/write_assist_test.cc.o"
  "CMakeFiles/write_assist_test.dir/write_assist_test.cc.o.d"
  "write_assist_test"
  "write_assist_test.pdb"
  "write_assist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_assist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
