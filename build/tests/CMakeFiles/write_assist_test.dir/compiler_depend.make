# Empty compiler generated dependencies file for write_assist_test.
# This may be replaced when dependencies are built.
