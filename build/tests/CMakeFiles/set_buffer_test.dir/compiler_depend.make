# Empty compiler generated dependencies file for set_buffer_test.
# This may be replaced when dependencies are built.
