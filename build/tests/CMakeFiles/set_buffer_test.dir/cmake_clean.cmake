file(REMOVE_RECURSE
  "CMakeFiles/set_buffer_test.dir/set_buffer_test.cc.o"
  "CMakeFiles/set_buffer_test.dir/set_buffer_test.cc.o.d"
  "set_buffer_test"
  "set_buffer_test.pdb"
  "set_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
