file(REMOVE_RECURSE
  "CMakeFiles/l2_test.dir/l2_test.cc.o"
  "CMakeFiles/l2_test.dir/l2_test.cc.o.d"
  "l2_test"
  "l2_test.pdb"
  "l2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
