file(REMOVE_RECURSE
  "CMakeFiles/ports_test.dir/ports_test.cc.o"
  "CMakeFiles/ports_test.dir/ports_test.cc.o.d"
  "ports_test"
  "ports_test.pdb"
  "ports_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ports_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
