file(REMOVE_RECURSE
  "CMakeFiles/windowed_pattern_test.dir/windowed_pattern_test.cc.o"
  "CMakeFiles/windowed_pattern_test.dir/windowed_pattern_test.cc.o.d"
  "windowed_pattern_test"
  "windowed_pattern_test.pdb"
  "windowed_pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
