# Empty compiler generated dependencies file for windowed_pattern_test.
# This may be replaced when dependencies are built.
