# Empty dependencies file for addr_test.
# This may be replaced when dependencies are built.
