file(REMOVE_RECURSE
  "CMakeFiles/addr_test.dir/addr_test.cc.o"
  "CMakeFiles/addr_test.dir/addr_test.cc.o.d"
  "addr_test"
  "addr_test.pdb"
  "addr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/addr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
