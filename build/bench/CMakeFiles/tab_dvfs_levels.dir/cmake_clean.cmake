file(REMOVE_RECURSE
  "CMakeFiles/tab_dvfs_levels.dir/tab_dvfs_levels.cc.o"
  "CMakeFiles/tab_dvfs_levels.dir/tab_dvfs_levels.cc.o.d"
  "tab_dvfs_levels"
  "tab_dvfs_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_dvfs_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
