# Empty compiler generated dependencies file for tab_dvfs_levels.
# This may be replaced when dependencies are built.
