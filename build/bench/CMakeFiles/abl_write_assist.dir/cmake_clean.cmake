file(REMOVE_RECURSE
  "CMakeFiles/abl_write_assist.dir/abl_write_assist.cc.o"
  "CMakeFiles/abl_write_assist.dir/abl_write_assist.cc.o.d"
  "abl_write_assist"
  "abl_write_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_write_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
