# Empty compiler generated dependencies file for abl_write_assist.
# This may be replaced when dependencies are built.
