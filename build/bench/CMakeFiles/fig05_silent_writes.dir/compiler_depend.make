# Empty compiler generated dependencies file for fig05_silent_writes.
# This may be replaced when dependencies are built.
