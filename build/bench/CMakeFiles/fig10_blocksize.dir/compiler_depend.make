# Empty compiler generated dependencies file for fig10_blocksize.
# This may be replaced when dependencies are built.
