file(REMOVE_RECURSE
  "CMakeFiles/fig10_blocksize.dir/fig10_blocksize.cc.o"
  "CMakeFiles/fig10_blocksize.dir/fig10_blocksize.cc.o.d"
  "fig10_blocksize"
  "fig10_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
