# Empty compiler generated dependencies file for abl_schemes_kernels.
# This may be replaced when dependencies are built.
