file(REMOVE_RECURSE
  "CMakeFiles/abl_schemes_kernels.dir/abl_schemes_kernels.cc.o"
  "CMakeFiles/abl_schemes_kernels.dir/abl_schemes_kernels.cc.o.d"
  "abl_schemes_kernels"
  "abl_schemes_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_schemes_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
