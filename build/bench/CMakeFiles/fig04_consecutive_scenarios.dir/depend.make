# Empty dependencies file for fig04_consecutive_scenarios.
# This may be replaced when dependencies are built.
