file(REMOVE_RECURSE
  "CMakeFiles/fig04_consecutive_scenarios.dir/fig04_consecutive_scenarios.cc.o"
  "CMakeFiles/fig04_consecutive_scenarios.dir/fig04_consecutive_scenarios.cc.o.d"
  "fig04_consecutive_scenarios"
  "fig04_consecutive_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_consecutive_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
