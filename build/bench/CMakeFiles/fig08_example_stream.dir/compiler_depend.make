# Empty compiler generated dependencies file for fig08_example_stream.
# This may be replaced when dependencies are built.
