file(REMOVE_RECURSE
  "CMakeFiles/fig08_example_stream.dir/fig08_example_stream.cc.o"
  "CMakeFiles/fig08_example_stream.dir/fig08_example_stream.cc.o.d"
  "fig08_example_stream"
  "fig08_example_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_example_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
