# Empty dependencies file for tab_cell_stability.
# This may be replaced when dependencies are built.
