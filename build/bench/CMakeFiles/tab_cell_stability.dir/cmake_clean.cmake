file(REMOVE_RECURSE
  "CMakeFiles/tab_cell_stability.dir/tab_cell_stability.cc.o"
  "CMakeFiles/tab_cell_stability.dir/tab_cell_stability.cc.o.d"
  "tab_cell_stability"
  "tab_cell_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_cell_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
