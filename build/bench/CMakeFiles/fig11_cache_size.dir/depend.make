# Empty dependencies file for fig11_cache_size.
# This may be replaced when dependencies are built.
