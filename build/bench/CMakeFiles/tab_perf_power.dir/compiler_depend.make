# Empty compiler generated dependencies file for tab_perf_power.
# This may be replaced when dependencies are built.
