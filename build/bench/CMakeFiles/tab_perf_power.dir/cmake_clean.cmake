file(REMOVE_RECURSE
  "CMakeFiles/tab_perf_power.dir/tab_perf_power.cc.o"
  "CMakeFiles/tab_perf_power.dir/tab_perf_power.cc.o.d"
  "tab_perf_power"
  "tab_perf_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_perf_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
