# Empty compiler generated dependencies file for tab_ecc_interleaving.
# This may be replaced when dependencies are built.
