file(REMOVE_RECURSE
  "CMakeFiles/tab_ecc_interleaving.dir/tab_ecc_interleaving.cc.o"
  "CMakeFiles/tab_ecc_interleaving.dir/tab_ecc_interleaving.cc.o.d"
  "tab_ecc_interleaving"
  "tab_ecc_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ecc_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
