file(REMOVE_RECURSE
  "CMakeFiles/fig09_access_reduction.dir/fig09_access_reduction.cc.o"
  "CMakeFiles/fig09_access_reduction.dir/fig09_access_reduction.cc.o.d"
  "fig09_access_reduction"
  "fig09_access_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_access_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
