# Empty compiler generated dependencies file for fig09_access_reduction.
# This may be replaced when dependencies are built.
