file(REMOVE_RECURSE
  "CMakeFiles/tab_rmw_overhead.dir/tab_rmw_overhead.cc.o"
  "CMakeFiles/tab_rmw_overhead.dir/tab_rmw_overhead.cc.o.d"
  "tab_rmw_overhead"
  "tab_rmw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_rmw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
