# Empty compiler generated dependencies file for tab_rmw_overhead.
# This may be replaced when dependencies are built.
