# Empty compiler generated dependencies file for abl_multi_entry_buffer.
# This may be replaced when dependencies are built.
