file(REMOVE_RECURSE
  "CMakeFiles/abl_multi_entry_buffer.dir/abl_multi_entry_buffer.cc.o"
  "CMakeFiles/abl_multi_entry_buffer.dir/abl_multi_entry_buffer.cc.o.d"
  "abl_multi_entry_buffer"
  "abl_multi_entry_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multi_entry_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
