# Empty compiler generated dependencies file for abl_subarray_conflicts.
# This may be replaced when dependencies are built.
