file(REMOVE_RECURSE
  "CMakeFiles/abl_subarray_conflicts.dir/abl_subarray_conflicts.cc.o"
  "CMakeFiles/abl_subarray_conflicts.dir/abl_subarray_conflicts.cc.o.d"
  "abl_subarray_conflicts"
  "abl_subarray_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_subarray_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
