# Empty dependencies file for abl_silent_detection.
# This may be replaced when dependencies are built.
