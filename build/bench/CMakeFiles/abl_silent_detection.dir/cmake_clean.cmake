file(REMOVE_RECURSE
  "CMakeFiles/abl_silent_detection.dir/abl_silent_detection.cc.o"
  "CMakeFiles/abl_silent_detection.dir/abl_silent_detection.cc.o.d"
  "abl_silent_detection"
  "abl_silent_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_silent_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
