# Empty dependencies file for tab_area_overhead.
# This may be replaced when dependencies are built.
