file(REMOVE_RECURSE
  "CMakeFiles/tab_area_overhead.dir/tab_area_overhead.cc.o"
  "CMakeFiles/tab_area_overhead.dir/tab_area_overhead.cc.o.d"
  "tab_area_overhead"
  "tab_area_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_area_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
