file(REMOVE_RECURSE
  "CMakeFiles/fig03_access_frequency.dir/fig03_access_frequency.cc.o"
  "CMakeFiles/fig03_access_frequency.dir/fig03_access_frequency.cc.o.d"
  "fig03_access_frequency"
  "fig03_access_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_access_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
