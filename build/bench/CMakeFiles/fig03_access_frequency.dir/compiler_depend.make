# Empty compiler generated dependencies file for fig03_access_frequency.
# This may be replaced when dependencies are built.
