
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/options.cc" "src/CMakeFiles/c8t.dir/app/options.cc.o" "gcc" "src/CMakeFiles/c8t.dir/app/options.cc.o.d"
  "/root/repo/src/core/analyzer.cc" "src/CMakeFiles/c8t.dir/core/analyzer.cc.o" "gcc" "src/CMakeFiles/c8t.dir/core/analyzer.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/CMakeFiles/c8t.dir/core/controller.cc.o" "gcc" "src/CMakeFiles/c8t.dir/core/controller.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/CMakeFiles/c8t.dir/core/policies.cc.o" "gcc" "src/CMakeFiles/c8t.dir/core/policies.cc.o.d"
  "/root/repo/src/core/set_buffer.cc" "src/CMakeFiles/c8t.dir/core/set_buffer.cc.o" "gcc" "src/CMakeFiles/c8t.dir/core/set_buffer.cc.o.d"
  "/root/repo/src/core/simulator.cc" "src/CMakeFiles/c8t.dir/core/simulator.cc.o" "gcc" "src/CMakeFiles/c8t.dir/core/simulator.cc.o.d"
  "/root/repo/src/core/tag_buffer.cc" "src/CMakeFiles/c8t.dir/core/tag_buffer.cc.o" "gcc" "src/CMakeFiles/c8t.dir/core/tag_buffer.cc.o.d"
  "/root/repo/src/core/write_scheme.cc" "src/CMakeFiles/c8t.dir/core/write_scheme.cc.o" "gcc" "src/CMakeFiles/c8t.dir/core/write_scheme.cc.o.d"
  "/root/repo/src/cpu/dvfs.cc" "src/CMakeFiles/c8t.dir/cpu/dvfs.cc.o" "gcc" "src/CMakeFiles/c8t.dir/cpu/dvfs.cc.o.d"
  "/root/repo/src/cpu/timing_core.cc" "src/CMakeFiles/c8t.dir/cpu/timing_core.cc.o" "gcc" "src/CMakeFiles/c8t.dir/cpu/timing_core.cc.o.d"
  "/root/repo/src/mem/addr.cc" "src/CMakeFiles/c8t.dir/mem/addr.cc.o" "gcc" "src/CMakeFiles/c8t.dir/mem/addr.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/c8t.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/c8t.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/functional_mem.cc" "src/CMakeFiles/c8t.dir/mem/functional_mem.cc.o" "gcc" "src/CMakeFiles/c8t.dir/mem/functional_mem.cc.o.d"
  "/root/repo/src/mem/replacement.cc" "src/CMakeFiles/c8t.dir/mem/replacement.cc.o" "gcc" "src/CMakeFiles/c8t.dir/mem/replacement.cc.o.d"
  "/root/repo/src/sram/array.cc" "src/CMakeFiles/c8t.dir/sram/array.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/array.cc.o.d"
  "/root/repo/src/sram/cell.cc" "src/CMakeFiles/c8t.dir/sram/cell.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/cell.cc.o.d"
  "/root/repo/src/sram/ecc.cc" "src/CMakeFiles/c8t.dir/sram/ecc.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/ecc.cc.o.d"
  "/root/repo/src/sram/energy.cc" "src/CMakeFiles/c8t.dir/sram/energy.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/energy.cc.o.d"
  "/root/repo/src/sram/fault_injection.cc" "src/CMakeFiles/c8t.dir/sram/fault_injection.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/fault_injection.cc.o.d"
  "/root/repo/src/sram/interleave.cc" "src/CMakeFiles/c8t.dir/sram/interleave.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/interleave.cc.o.d"
  "/root/repo/src/sram/ports.cc" "src/CMakeFiles/c8t.dir/sram/ports.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/ports.cc.o.d"
  "/root/repo/src/sram/subarray.cc" "src/CMakeFiles/c8t.dir/sram/subarray.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/subarray.cc.o.d"
  "/root/repo/src/sram/write_assist.cc" "src/CMakeFiles/c8t.dir/sram/write_assist.cc.o" "gcc" "src/CMakeFiles/c8t.dir/sram/write_assist.cc.o.d"
  "/root/repo/src/stats/counter.cc" "src/CMakeFiles/c8t.dir/stats/counter.cc.o" "gcc" "src/CMakeFiles/c8t.dir/stats/counter.cc.o.d"
  "/root/repo/src/stats/distribution.cc" "src/CMakeFiles/c8t.dir/stats/distribution.cc.o" "gcc" "src/CMakeFiles/c8t.dir/stats/distribution.cc.o.d"
  "/root/repo/src/stats/registry.cc" "src/CMakeFiles/c8t.dir/stats/registry.cc.o" "gcc" "src/CMakeFiles/c8t.dir/stats/registry.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/c8t.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/c8t.dir/stats/table.cc.o.d"
  "/root/repo/src/trace/access.cc" "src/CMakeFiles/c8t.dir/trace/access.cc.o" "gcc" "src/CMakeFiles/c8t.dir/trace/access.cc.o.d"
  "/root/repo/src/trace/kernels.cc" "src/CMakeFiles/c8t.dir/trace/kernels.cc.o" "gcc" "src/CMakeFiles/c8t.dir/trace/kernels.cc.o.d"
  "/root/repo/src/trace/markov_stream.cc" "src/CMakeFiles/c8t.dir/trace/markov_stream.cc.o" "gcc" "src/CMakeFiles/c8t.dir/trace/markov_stream.cc.o.d"
  "/root/repo/src/trace/patterns.cc" "src/CMakeFiles/c8t.dir/trace/patterns.cc.o" "gcc" "src/CMakeFiles/c8t.dir/trace/patterns.cc.o.d"
  "/root/repo/src/trace/rng.cc" "src/CMakeFiles/c8t.dir/trace/rng.cc.o" "gcc" "src/CMakeFiles/c8t.dir/trace/rng.cc.o.d"
  "/root/repo/src/trace/spec_profiles.cc" "src/CMakeFiles/c8t.dir/trace/spec_profiles.cc.o" "gcc" "src/CMakeFiles/c8t.dir/trace/spec_profiles.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/c8t.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/c8t.dir/trace/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
