# Empty dependencies file for c8t.
# This may be replaced when dependencies are built.
