file(REMOVE_RECURSE
  "libc8t.a"
)
