file(REMOVE_RECURSE
  "CMakeFiles/c8tsim.dir/c8tsim.cc.o"
  "CMakeFiles/c8tsim.dir/c8tsim.cc.o.d"
  "c8tsim"
  "c8tsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c8tsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
