# Empty dependencies file for c8tsim.
# This may be replaced when dependencies are built.
