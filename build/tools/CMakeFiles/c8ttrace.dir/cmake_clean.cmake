file(REMOVE_RECURSE
  "CMakeFiles/c8ttrace.dir/c8ttrace.cc.o"
  "CMakeFiles/c8ttrace.dir/c8ttrace.cc.o.d"
  "c8ttrace"
  "c8ttrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c8ttrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
