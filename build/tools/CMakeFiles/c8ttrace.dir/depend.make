# Empty dependencies file for c8ttrace.
# This may be replaced when dependencies are built.
