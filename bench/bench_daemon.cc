/**
 * @file
 * c8td sweep-service soak (DESIGN.md §13): one in-process daemon,
 * N concurrent clients pipelining thousands of mixed run / Vdd-sweep
 * jobs over its Unix socket.
 *
 * Two phases over the same unique-spec mix:
 *
 *  - cold: every unique spec exactly once, fanned across the clients
 *    (nothing cached — the stream cache, fault memo and whole-result
 *    memo all start empty);
 *  - warm soak: every client loops the full mix for enough rounds to
 *    clear the job target (default 2000), so nearly every request is
 *    answered from the daemon's caches.
 *
 * Reported: aggregate jobs/s and served config-runs/s per phase, the
 * warm-over-cold per-job speedup (the memoization claim, measured —
 * the acceptance floor is 1.3x) and client-observed p50/p99/p999 job
 * latency from the warm soak. A kind:"daemon" record is appended to
 * C8T_BENCH_JSON; the variable is scrubbed from the environment while
 * the daemon runs so its internal sweeps don't spam kind:"sweep"
 * records into the same file.
 *
 * The per-job window defaults to 20,000 measured accesses (small on
 * purpose: the soak is about service overhead and cache reuse, not
 * steady-state replay rate); C8T_BENCH_ACCESSES overrides it, and
 * C8T_BENCH_CLIENTS / C8T_BENCH_DAEMON_JOBS size the fleet and the
 * warm-phase job target.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/common.hh"
#include "core/job_spec.hh"
#include "core/vdd_sweep.hh"
#include "net/client.hh"
#include "net/daemon.hh"
#include "obs/histogram.hh"
#include "stats/table.hh"

namespace
{

using namespace c8t;
using Clock = std::chrono::steady_clock;

/** Positive-integer env override with a parse-failure warning. */
std::size_t
envCount(const char *name, std::size_t fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v == 0) {
        std::cerr << "bench_daemon: ignoring invalid " << name << "=\""
                  << env << "\" (want a positive integer)\n";
        return fallback;
    }
    return static_cast<std::size_t>(v);
}

/** One entry of the job mix: the wire spec plus its served weight. */
struct MixEntry
{
    std::string json;        ///< request payload (one JobSpec)
    std::uint64_t configRuns; ///< config-runs this spec represents
};

/** Build the unique-spec mix: runs over workloads x sizes + Vdd sweeps. */
std::vector<MixEntry>
buildMix(std::uint64_t accesses)
{
    std::vector<MixEntry> mix;
    const std::vector<std::string> names = trace::specBenchmarkNames();
    const std::size_t workloads = std::min<std::size_t>(names.size(), 8);
    const std::uint64_t gridPoints = core::VddSweepSpec{}.grid.size();
    for (std::size_t w = 0; w < workloads; ++w) {
        for (const unsigned kb : {16u, 32u}) {
            MixEntry e;
            e.json = "{\"kind\":\"run\",\"workload\":\"spec:" +
                     names[w] + "\",\"accesses\":" +
                     std::to_string(accesses) +
                     ",\"cache\":{\"size_kb\":" + std::to_string(kb) +
                     "}}";
            e.configRuns = core::JobSpec::fromJsonText(e.json)
                               .effectiveSchemes()
                               .size();
            mix.push_back(std::move(e));
        }
    }
    for (std::size_t w = 0; w < std::min<std::size_t>(workloads, 2);
         ++w) {
        MixEntry e;
        e.json = "{\"kind\":\"vdd_sweep\",\"workload\":\"spec:" +
                 names[w] + "\",\"accesses\":" +
                 std::to_string(accesses) + "}";
        e.configRuns = core::JobSpec::fromJsonText(e.json)
                           .effectiveSchemes()
                           .size() *
                       gridPoints;
        mix.push_back(std::move(e));
    }
    return mix;
}

/** Per-phase aggregate over every client. */
struct PhaseResult
{
    std::uint64_t jobs = 0;
    std::uint64_t configRuns = 0;
    double wallSeconds = 0.0;
    obs::Histogram latencyNs;

    double jobsPerSec() const
    {
        return wallSeconds > 0.0 ? jobs / wallSeconds : 0.0;
    }
    double configRunsPerSec() const
    {
        return wallSeconds > 0.0 ? configRuns / wallSeconds : 0.0;
    }
    /** Quantile in microseconds. */
    double quantileUs(double q) const
    {
        return static_cast<double>(latencyNs.quantile(q)) / 1e3;
    }
};

/**
 * Run one phase: @p clients threads, each submitting its slice of
 * @p jobs (indices into @p mix) serially over its own connection.
 * Per-job latency is client-observed call() round-trip time.
 */
PhaseResult
runPhase(const std::string &socket, std::size_t clients,
         const std::vector<MixEntry> &mix,
         const std::vector<std::vector<std::size_t>> &jobs)
{
    std::vector<std::vector<std::uint64_t>> latencies(clients);
    std::atomic<std::uint64_t> failures{0};
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            net::DaemonClient client(socket);
            latencies[c].reserve(jobs[c].size());
            for (const std::size_t idx : jobs[c]) {
                const Clock::time_point start = Clock::now();
                try {
                    const std::string doc = client.call(mix[idx].json);
                    if (doc.empty())
                        failures.fetch_add(1);
                } catch (const std::exception &) {
                    failures.fetch_add(1);
                }
                latencies[c].push_back(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - start)
                        .count()));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    PhaseResult r;
    r.wallSeconds = std::chrono::duration<double>(Clock::now() - t0)
                        .count();
    for (std::size_t c = 0; c < clients; ++c) {
        r.jobs += jobs[c].size();
        for (const std::size_t idx : jobs[c])
            r.configRuns += mix[idx].configRuns;
        for (const std::uint64_t ns : latencies[c])
            r.latencyNs.record(ns);
    }
    if (const std::uint64_t f = failures.load()) {
        std::cerr << "bench_daemon: " << f << " of " << r.jobs
                  << " jobs failed\n";
        std::exit(1);
    }
    return r;
}

/** Append the kind:"daemon" record (same style as the sweep engine). */
void
emitBenchRecord(const char *path, std::size_t clients, unsigned workers,
                std::uint64_t accesses, std::size_t uniqueSpecs,
                const PhaseResult &cold, const PhaseResult &warm)
{
    if (!path || !*path)
        return;
    std::ofstream os(path, std::ios::app);
    if (!os) {
        std::cerr << "bench_daemon: cannot append to C8T_BENCH_JSON="
                  << path << "\n";
        return;
    }
    const double speedup =
        (warm.jobsPerSec() > 0.0 && cold.jobsPerSec() > 0.0)
            ? warm.jobsPerSec() / cold.jobsPerSec()
            : 0.0;
    os << "{\"kind\":\"daemon\",\"label\":\"daemon_soak\",\"clients\":"
       << clients << ",\"workers\":" << workers
       << ",\"unique_specs\":" << uniqueSpecs
       << ",\"accesses_per_job\":" << accesses
       << ",\"cold_jobs\":" << cold.jobs
       << ",\"cold_wall_seconds\":" << cold.wallSeconds
       << ",\"cold_jobs_per_sec\":" << cold.jobsPerSec()
       << ",\"warm_jobs\":" << warm.jobs
       << ",\"warm_wall_seconds\":" << warm.wallSeconds
       << ",\"warm_jobs_per_sec\":" << warm.jobsPerSec()
       << ",\"config_runs_per_sec\":" << warm.configRunsPerSec()
       << ",\"warm_speedup\":" << speedup
       << ",\"p50_us\":" << warm.quantileUs(0.50)
       << ",\"p99_us\":" << warm.quantileUs(0.99)
       << ",\"p999_us\":" << warm.quantileUs(0.999) << "}\n";
}

} // namespace

int
main()
{
    using namespace c8t;

    // Capture then scrub the record sink: the daemon's internal sweeps
    // would otherwise append one kind:"sweep" line per job.
    std::string benchJson;
    if (const char *env = std::getenv("C8T_BENCH_JSON")) {
        benchJson = env;
        ::unsetenv("C8T_BENCH_JSON");
    }

    std::uint64_t accesses = 20'000;
    if (std::getenv("C8T_BENCH_ACCESSES"))
        accesses = bench::measureAccesses();
    else
        std::cerr << "bench: measuring " << accesses
                  << " accesses per job (set C8T_BENCH_ACCESSES to "
                     "override)\n";

    const std::size_t clients = envCount("C8T_BENCH_CLIENTS", 8);
    const std::size_t targetJobs =
        envCount("C8T_BENCH_DAEMON_JOBS", 2000);

    const std::vector<MixEntry> mix = buildMix(accesses);
    const std::size_t rounds = std::max<std::size_t>(
        1, (targetJobs + clients * mix.size() - 1) /
               (clients * mix.size()));

    net::DaemonConfig cfg;
    cfg.socketPath = "/tmp/c8t_bench_daemon_" +
                     std::to_string(::getpid()) + ".sock";
    net::Daemon daemon(cfg);
    std::thread server([&daemon] { daemon.serve(); });
    while (!daemon.ready())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    std::cerr << "bench_daemon: " << clients << " clients, "
              << mix.size() << " unique specs, " << rounds
              << " warm rounds (" << clients * mix.size() * rounds
              << " soak jobs)\n";

    // Cold: each unique spec exactly once, striped across the fleet.
    std::vector<std::vector<std::size_t>> coldJobs(clients);
    for (std::size_t i = 0; i < mix.size(); ++i)
        coldJobs[i % clients].push_back(i);
    const PhaseResult cold =
        runPhase(cfg.socketPath, clients, mix, coldJobs);

    // Warm soak: every client loops the whole mix, each starting at a
    // different offset so concurrent requests mostly differ.
    std::vector<std::vector<std::size_t>> warmJobs(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        warmJobs[c].reserve(rounds * mix.size());
        for (std::size_t r = 0; r < rounds; ++r)
            for (std::size_t i = 0; i < mix.size(); ++i)
                warmJobs[c].push_back((i + c) % mix.size());
    }
    const PhaseResult warm =
        runPhase(cfg.socketPath, clients, mix, warmJobs);

    daemon.stop();
    server.join();
    std::remove(cfg.socketPath.c_str());

    const double speedup = warm.jobsPerSec() / cold.jobsPerSec();
    {
        stats::Table t("daemon soak: " + std::to_string(clients) +
                       " clients over one shared pool (" +
                       std::to_string(mix.size()) + " unique specs)");
        t.setHeader({"phase", "jobs", "wall s", "jobs/s", "cfg-runs/s",
                     "p50 us", "p99 us", "p999 us"});
        t.setPrecision(2);
        for (const auto *p : {&cold, &warm}) {
            t.addRow({p == &cold ? "cold" : "warm",
                      static_cast<std::int64_t>(p->jobs),
                      p->wallSeconds, p->jobsPerSec(),
                      p->configRunsPerSec(), p->quantileUs(0.50),
                      p->quantileUs(0.99), p->quantileUs(0.999)});
        }
        t.print(std::cout);
    }
    std::cout << "\ndaemon: warm serves " << warm.jobsPerSec()
              << " jobs/s (" << warm.configRunsPerSec()
              << " config-runs/s) vs " << cold.jobsPerSec()
              << " cold = " << speedup << "x speedup; warm p99 "
              << warm.quantileUs(0.99) << " us\n";

    emitBenchRecord(benchJson.empty() ? nullptr : benchJson.c_str(),
                    clients, daemon.config().workers, accesses,
                    mix.size(), cold, warm);

    if (speedup < 1.3) {
        std::cerr << "bench_daemon: warm speedup " << speedup
                  << "x is below the 1.3x acceptance floor\n";
        return 1;
    }
    return 0;
}
