/**
 * @file
 * Ablation — replacement-policy sensitivity.
 *
 * The paper evaluates LRU only. Since the techniques act on the
 * request stream (set-level locality), the reductions should be nearly
 * independent of the replacement policy; this bench verifies that.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;
    using mem::ReplKind;

    const core::RunConfig rc = bench::runConfig();

    stats::Table t("Ablation: access reduction vs replacement policy "
                   "(average over 25 benchmarks, %)");
    t.setHeader({"policy", "WG %", "WG+RB %", "miss rate %"});

    for (ReplKind kind : {ReplKind::Lru, ReplKind::TreePlru,
                          ReplKind::Fifo, ReplKind::Random}) {
        mem::CacheConfig cache;
        cache.replacement = kind;

        double wg_sum = 0, rb_sum = 0, miss = 0;
        for (const auto &p : trace::specProfiles()) {
            trace::MarkovStream gen(p);
            core::MultiSchemeRunner runner(bench::schemeConfigs(
                cache, {WriteScheme::Rmw, WriteScheme::WriteGrouping,
                        WriteScheme::WriteGroupingReadBypass}));
            const auto res = runner.run(gen, rc);
            wg_sum += bench::reductionPct(res[0], res[1]);
            rb_sum += bench::reductionPct(res[0], res[2]);
            miss += 100.0 * res[0].misses /
                    std::max<std::uint64_t>(
                        res[0].hits + res[0].misses, 1);
        }
        const double n = trace::specProfiles().size();
        t.addRow({std::string(toString(kind)), wg_sum / n, rb_sum / n,
                  miss / n});
    }
    t.print(std::cout);

    std::cout << "\nReading: grouping acts on the access stream, not "
                 "on residency decisions, so the reductions barely "
                 "move across policies even as the miss rate shifts.\n";
    return 0;
}
