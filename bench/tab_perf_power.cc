/**
 * @file
 * §5.5 — performance and power.
 *
 * The paper discusses these qualitatively ("evaluating performance and
 * power ... is part of our ongoing research") and predicts: WG's write
 * latency cost is negligible (writes are off the critical path), WG+RB
 * improves read latency (Set-Buffer faster than the array, read port
 * more available), and both reduce power by replacing row accesses
 * with small-buffer accesses. This bench quantifies all three with the
 * timing core and the cacti-lite energy model.
 */

#include <iostream>

#include "bench/common.hh"
#include "cpu/timing_core.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    const WriteScheme schemes[] = {WriteScheme::Rmw,
                                   WriteScheme::WriteGrouping,
                                   WriteScheme::WriteGroupingReadBypass};

    stats::Table t("Section 5.5: performance and power model "
                   "(relative to RMW = 1.000)");
    t.setHeader({"benchmark", "CPI RMW", "CPI WG", "CPI WG+RB",
                 "read lat WG+RB", "energy WG", "energy WG+RB",
                 "port stalls WG+RB"});
    t.setPrecision(3);

    const std::uint64_t n = bench::measureAccesses();

    for (const auto &p : trace::specProfiles()) {
        double cpi[3] = {};
        double energy[3] = {};
        double read_lat[3] = {};
        double stalls[3] = {};

        for (int i = 0; i < 3; ++i) {
            trace::MarkovStream gen(p);
            mem::FunctionalMemory memory;
            core::ControllerConfig cfg;
            cfg.scheme = schemes[i];
            core::CacheController ctrl(cfg, memory);
            cpu::TimingCore core_model(cpu::CoreParams{}, ctrl);
            const cpu::TimingResult r = core_model.run(gen, n);
            cpi[i] = r.cpi();
            energy[i] = ctrl.dynamicEnergy();
            read_lat[i] = ctrl.readLatency().mean();
            stalls[i] = static_cast<double>(ctrl.ports().stallCycles());
        }

        t.addRow({p.name, 1.0, cpi[1] / cpi[0], cpi[2] / cpi[0],
                  read_lat[2] / read_lat[0], energy[1] / energy[0],
                  energy[2] / energy[0],
                  stalls[0] > 0 ? stalls[2] / stalls[0] : 0.0});
    }

    t.addRow({std::string("average"), 1.0, stats::columnMean(t, 2),
              stats::columnMean(t, 3), stats::columnMean(t, 4),
              stats::columnMean(t, 5), stats::columnMean(t, 6),
              stats::columnMean(t, 7)});
    t.print(std::cout);

    std::cout
        << "\nPaper reference (qualitative): WG performance cost "
           "negligible (writes off the critical path); WG+RB improves "
           "read latency and read-port availability; both reduce "
           "power by replacing row accesses with Set-Buffer "
           "accesses.\n";
    return 0;
}
