/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench prints the rows/series of one figure or table from the
 * paper (plus the derived averages the text quotes). Run lengths can be
 * scaled through the C8T_BENCH_ACCESSES environment variable; the
 * defaults are large enough for all reported statistics to be stable to
 * well under one percentage point.
 */

#ifndef C8T_BENCH_COMMON_HH
#define C8T_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "core/write_scheme.hh"
#include "mem/cache.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace c8t::bench
{

/** Measurement window length (overridable via C8T_BENCH_ACCESSES). */
inline std::uint64_t
measureAccesses()
{
    if (const char *env = std::getenv("C8T_BENCH_ACCESSES")) {
        const std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 300'000;
}

/** Warm-up window: 10 % of the measurement window. */
inline core::RunConfig
runConfig()
{
    const std::uint64_t n = measureAccesses();
    return core::RunConfig{n / 10, n};
}

/** Build one controller config per scheme over a common cache shape. */
inline std::vector<core::ControllerConfig>
schemeConfigs(const mem::CacheConfig &cache,
              const std::vector<core::WriteScheme> &schemes)
{
    std::vector<core::ControllerConfig> cfgs;
    cfgs.reserve(schemes.size());
    for (core::WriteScheme s : schemes) {
        core::ControllerConfig c;
        c.cache = cache;
        c.scheme = s;
        cfgs.push_back(c);
    }
    return cfgs;
}

/** Access reduction of @p r relative to the RMW baseline, in percent. */
inline double
reductionPct(const core::SchemeRunResult &rmw,
             const core::SchemeRunResult &r)
{
    if (rmw.demandAccesses == 0)
        return 0.0;
    return 100.0 * (1.0 - static_cast<double>(r.demandAccesses) /
                              static_cast<double>(rmw.demandAccesses));
}

/**
 * Run every SPEC profile through the given schemes on @p cache and
 * return per-benchmark results (outer index: benchmark, inner: scheme).
 */
inline std::vector<std::vector<core::SchemeRunResult>>
sweepSpec(const mem::CacheConfig &cache,
          const std::vector<core::WriteScheme> &schemes)
{
    std::vector<std::vector<core::SchemeRunResult>> all;
    const core::RunConfig rc = runConfig();
    for (const auto &p : trace::specProfiles()) {
        trace::MarkovStream gen(p);
        core::MultiSchemeRunner runner(schemeConfigs(cache, schemes));
        all.push_back(runner.run(gen, rc));
    }
    return all;
}

} // namespace c8t::bench

#endif // C8T_BENCH_COMMON_HH
