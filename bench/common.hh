/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench prints the rows/series of one figure or table from the
 * paper (plus the derived averages the text quotes). Run lengths can be
 * scaled through the C8T_BENCH_ACCESSES environment variable; the
 * defaults are large enough for all reported statistics to be stable to
 * well under one percentage point.
 *
 * Observability (DESIGN.md §6) works on every bench with no code
 * changes: C8T_PROGRESS=1 heartbeats sweep progress to stderr and
 * C8T_CHROME_TRACE=<file> records a Perfetto-loadable trace of the
 * sweep schedule; C8T_BENCH_JSON (above the sweep engine) appends
 * perf records for tools/bench_report.sh.
 */

#ifndef C8T_BENCH_COMMON_HH
#define C8T_BENCH_COMMON_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "core/write_scheme.hh"
#include "mem/cache.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace c8t::bench
{

/**
 * Measurement window length (overridable via C8T_BENCH_ACCESSES).
 *
 * The override must be a whole positive decimal number; anything else
 * (trailing garbage like "10x", negatives, overflow, empty) is
 * rejected with a warning rather than silently truncated. The
 * effective run length is printed to stderr once per binary.
 */
inline std::uint64_t
measureAccesses()
{
    static const std::uint64_t chosen = [] {
        std::uint64_t v = 300'000;
        if (const char *env = std::getenv("C8T_BENCH_ACCESSES")) {
            char *end = nullptr;
            errno = 0;
            const unsigned long long parsed =
                std::strtoull(env, &end, 10);
            if (end == env || *end != '\0' || errno == ERANGE ||
                parsed == 0) {
                std::cerr << "bench: ignoring invalid "
                             "C8T_BENCH_ACCESSES=\""
                          << env << "\" (want a positive integer)\n";
            } else {
                v = parsed;
            }
        }
        std::cerr << "bench: measuring " << v
                  << " accesses per run (set C8T_BENCH_ACCESSES to "
                     "override)\n";
        return v;
    }();
    return chosen;
}

/** Warm-up window: 10 % of the measurement window. */
inline core::RunConfig
runConfig()
{
    const std::uint64_t n = measureAccesses();
    return core::RunConfig{n / 10, n};
}

/** Build one controller config per scheme over a common cache shape. */
inline std::vector<core::ControllerConfig>
schemeConfigs(const mem::CacheConfig &cache,
              const std::vector<core::WriteScheme> &schemes)
{
    std::vector<core::ControllerConfig> cfgs;
    cfgs.reserve(schemes.size());
    for (core::WriteScheme s : schemes) {
        core::ControllerConfig c;
        c.cache = cache;
        c.scheme = s;
        cfgs.push_back(c);
    }
    return cfgs;
}

/** Access reduction of @p r relative to the RMW baseline, in percent. */
inline double
reductionPct(const core::SchemeRunResult &rmw,
             const core::SchemeRunResult &r)
{
    if (rmw.demandAccesses == 0)
        return 0.0;
    return 100.0 * (1.0 - static_cast<double>(r.demandAccesses) /
                              static_cast<double>(rmw.demandAccesses));
}

/**
 * Run every SPEC profile through the given schemes on @p cache and
 * return per-benchmark results (outer index: benchmark, inner: scheme).
 *
 * Runs through the parallel sweep engine: one job per profile, fanned
 * across C8T_JOBS (default: hardware_concurrency) worker threads.
 * Results are byte-identical to the historical serial loop for any
 * worker count (every job owns its generator, memories and runner).
 */
inline std::vector<std::vector<core::SchemeRunResult>>
sweepSpec(const mem::CacheConfig &cache,
          const std::vector<core::WriteScheme> &schemes)
{
    const core::ParallelSweeper sweeper;
    return sweeper.run(core::specSweepJobs(cache, schemes), runConfig(),
                       "spec_sweep:" + cache.toString());
}

} // namespace c8t::bench

#endif // C8T_BENCH_COMMON_HH
