/**
 * @file
 * Motivation (§1/§2, Figure 1) — 6T vs 8T stability under voltage
 * scaling.
 *
 * The paper's premise: 6T read stability collapses as Vdd scales, so
 * the 6T cell sets the cache's Vmin; the 8T cell decouples the read
 * path and scales lower (even sub-threshold per Verma & Chandrakasan).
 * This bench prints the analytic SNM / failure-probability / Vmin
 * curves of the cell model.
 */

#include <iostream>

#include "sram/cell.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t::sram;

    c8t::stats::Table t("Cell stability vs supply voltage "
                   "(read noise margin and failure probability)");
    t.setHeader({"Vdd (V)", "6T read SNM (mV)", "8T read SNM (mV)",
                 "6T read Pfail", "8T read Pfail"});
    t.setPrecision(4);

    for (double v = 1.1; v >= 0.499; v -= 0.1) {
        t.addRow({v,
                  1000.0 * noiseMargin(CellType::SixT, CellOp::Read, v),
                  1000.0 * noiseMargin(CellType::EightT, CellOp::Read, v),
                  failureProbability(CellType::SixT, CellOp::Read, v),
                  failureProbability(CellType::EightT, CellOp::Read, v)});
    }
    t.print(std::cout);

    c8t::stats::Table vm("Minimum operating voltage for a per-cell failure "
                    "target");
    vm.setHeader({"target Pfail", "6T Vmin (V)", "8T Vmin (V)",
                  "headroom (mV)"});
    vm.setPrecision(3);
    for (double target : {1e-3, 1e-6, 1e-9}) {
        const double v6 = vmin(CellType::SixT, target);
        const double v8 = vmin(CellType::EightT, target);
        vm.addRow({target, v6, v8, 1000.0 * (v6 - v8)});
    }
    vm.print(std::cout);

    std::cout << "\nPaper reference: the 8T cell's decoupled read port "
                 "makes read SNM equal hold SNM, enabling voltage "
                 "scaling the 6T cell cannot reach — the premise that "
                 "makes the column-selection problem worth solving.\n";
    return 0;
}
