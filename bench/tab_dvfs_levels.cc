/**
 * @file
 * The §1 DVFS story, end to end.
 *
 * "The more the number of voltage levels the higher the chances of
 * operating at the optimal voltage ... the minimum voltage level
 * assuring correct operation limits the lowest operating voltage
 * [and] one of the system components likely to serve as the
 * bottleneck is the cache."
 *
 * This bench combines the cell Vmin model, the DVFS governor, and the
 * cache controllers: a phase schedule with varying performance demand
 * runs under (a) a 6T-limited floor with direct writes and (b) an
 * 8T-limited floor with RMW / WG+RB, reporting total cache dynamic
 * energy. The punchline: 8T + WG+RB beats 6T at every phase mix
 * because it can follow the demand down in voltage *and* pays almost
 * no RMW tax.
 */

#include <iostream>

#include "bench/common.hh"
#include "cpu/dvfs.hh"
#include "sram/cell.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    constexpr double pfail = 1e-6;
    const double vmin6 = sram::vmin(sram::CellType::SixT, pfail);
    const double vmin8 = sram::vmin(sram::CellType::EightT, pfail);

    cpu::DvfsGovernor gov6(cpu::defaultDvfsLevels(), vmin6);
    cpu::DvfsGovernor gov8(cpu::defaultDvfsLevels(), vmin8);

    std::cout << "Vmin @ Pfail " << pfail << ": 6T " << vmin6
              << " V (locks out " << gov6.lockedOutLevels()
              << " levels), 8T " << vmin8 << " V (locks out "
              << gov8.lockedOutLevels() << ")\n\n";

    // Nominal-voltage energy per scheme for one phase's worth of the
    // gcc stream.
    trace::MarkovStream gen(trace::specProfile("gcc"));
    core::MultiSchemeRunner runner(bench::schemeConfigs(
        {}, {WriteScheme::SixTDirect, WriteScheme::Rmw,
             WriteScheme::WriteGroupingReadBypass}));
    const auto res = runner.run(gen, bench::runConfig());
    const double e6 = res[0].dynamicEnergy;
    const double e_rmw = res[1].dynamicEnergy;
    const double e_rb = res[2].dynamicEnergy;

    stats::Table t("Cache dynamic energy per phase under DVFS "
                   "(relative to 6T at nominal voltage = 1.000)");
    t.setHeader({"phase demand", "6T @ its floor", "8T RMW @ floor",
                 "8T WG+RB @ floor"});
    t.setPrecision(3);

    for (double demand : {1.0, 0.8, 0.6, 0.4, 0.2}) {
        const auto &l6 = gov6.levelFor(demand);
        const auto &l8 = gov8.levelFor(demand);
        t.addRow({demand,
                  cpu::DvfsGovernor::scaleEnergy(e6, 1.0, l6) / e6,
                  cpu::DvfsGovernor::scaleEnergy(e_rmw, 1.0, l8) / e6,
                  cpu::DvfsGovernor::scaleEnergy(e_rb, 1.0, l8) / e6});
    }
    t.print(std::cout);

    std::cout
        << "\nReading: at high demand the 8T options pay the RMW tax "
           "(middle column above 1.0) that WG+RB mostly removes; at "
           "low demand the 8T floor unlocks voltage levels the 6T "
           "cache cannot reach, and 8T + WG+RB is strictly best — "
           "the combined premise and contribution of the paper.\n";
    return 0;
}
