/**
 * @file
 * Motivation (§2) — why bit interleaving (and hence RMW) exists.
 *
 * "Bit interleaving is commonly used to spread out bits belonging to
 * one word across one SRAM array row and prevent multi-bit upsets in
 * one word" so that per-word SEC-DED suffices. This bench injects
 * multi-bit bursts into ECC-protected rows with and without
 * interleaving and reports the outcome distribution.
 */

#include <iostream>

#include "sram/fault_injection.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t::sram;

    c8t::stats::Table t("Multi-bit upset outcomes: 10k burst strikes on a "
                   "16-word ECC-protected row");
    t.setHeader({"interleave", "burst", "multi-bit words",
                 "corrected", "uncorrectable", "silent corruption",
                 "fully recovered %"});

    for (std::uint32_t degree : {1u, 2u, 4u, 8u}) {
        for (std::uint32_t burst : {1u, 2u, 3u, 4u}) {
            UpsetCampaign cfg;
            cfg.words = 16;
            cfg.degree = degree;
            cfg.burstLength = burst;
            cfg.trials = 10'000;
            cfg.seed = 1000 + degree * 10 + burst;
            const UpsetStats s = runUpsetCampaign(cfg);
            t.addRow({static_cast<std::int64_t>(degree),
                      static_cast<std::int64_t>(burst),
                      static_cast<std::int64_t>(s.multiBitWords),
                      static_cast<std::int64_t>(s.corrected),
                      static_cast<std::int64_t>(s.detectedUncorrectable),
                      static_cast<std::int64_t>(s.silentCorruptions),
                      100.0 * s.fullyRecoveredTrials / s.trials});
        }
    }
    t.print(std::cout);

    std::cout
        << "\nReading: with interleave degree >= burst length every "
           "strike is fully corrected by per-word SEC-DED; without "
           "interleaving, 2-bit bursts defeat the code. This is the "
           "design constraint that forces shared write word lines and "
           "therefore RMW — the problem WG/WG+RB attack.\n";
    return 0;
}
