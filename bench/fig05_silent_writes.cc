/**
 * @file
 * Figure 5 — silent write frequency.
 *
 * Paper: fraction of writes whose value matches the value already
 * stored; more than 42 % on average, 77 % for bwaves.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;

    mem::CacheConfig cache;
    mem::AddrLayout layout(cache.blockBytes, cache.numSets());

    stats::Table t("Figure 5: silent write frequency (% of writes)");
    t.setHeader({"benchmark", "silent %"});

    for (const auto &p : trace::specProfiles()) {
        trace::MarkovStream gen(p);
        const core::StreamStats s = core::analyzeStream(
            gen, layout, bench::measureAccesses());
        t.addRow({p.name, 100.0 * s.silentWriteFraction});
    }

    t.addRow({std::string("average"), stats::columnMean(t, 1)});
    t.print(std::cout);

    std::cout << "\nPaper reference: more than 42 % of writes are "
                 "silent on average; bwaves reaches 77 %.\n";
    return 0;
}
