/**
 * @file
 * Ablation — silent-write detection on/off.
 *
 * Quantifies how much of WG's win comes from the Dirty-bit/comparator
 * mechanism (the Figure 5 -> Figure 9 causal link) versus pure
 * grouping.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    mem::CacheConfig cache;
    const core::RunConfig rc = bench::runConfig();

    stats::Table t("Ablation: WG access reduction with and without "
                   "silent-write detection (%)");
    t.setHeader({"benchmark", "WG full", "WG no-silent",
                 "silent contribution"});

    for (const auto &p : trace::specProfiles()) {
        trace::MarkovStream gen(p);
        std::vector<core::ControllerConfig> cfgs(3);
        for (auto &c : cfgs)
            c.cache = cache;
        cfgs[0].scheme = WriteScheme::Rmw;
        cfgs[1].scheme = WriteScheme::WriteGrouping;
        cfgs[2].scheme = WriteScheme::WriteGrouping;
        cfgs[2].silentDetection = false;

        core::MultiSchemeRunner runner(cfgs);
        const auto res = runner.run(gen, rc);
        const double full = bench::reductionPct(res[0], res[1]);
        const double bare = bench::reductionPct(res[0], res[2]);
        t.addRow({p.name, full, bare, full - bare});
    }
    t.addRow({std::string("average"), stats::columnMean(t, 1),
              stats::columnMean(t, 2), stats::columnMean(t, 3)});
    t.print(std::cout);

    std::cout << "\nReading: the gap between the columns is the share "
                 "of WG's reduction owed to eliding write-backs of "
                 "all-silent groups; it is largest for the "
                 "silent-heavy benchmarks (bwaves, lbm, wrf).\n";
    return 0;
}
