/**
 * @file
 * Figure 8 — the worked request-stream example.
 *
 * Replays the paper's §4.3 stream (Ra, Wb, Wb, Rb, Rb, Wb, Wa[silent],
 * Rb, Ra with all blocks resident and the Tag-Buffer initially empty)
 * through RMW, WG and WG+RB, printing the per-request array operations
 * so the output can be compared line by line with the figure.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "core/controller.hh"
#include "stats/table.hh"

namespace
{

using namespace c8t;
using core::AccessOutcome;
using core::CacheController;
using core::ControllerConfig;
using core::WriteScheme;
using trace::AccessType;
using trace::MemAccess;

constexpr std::uint64_t blockA = 0x20000;
constexpr std::uint64_t blockB = 0x20040;

MemAccess
R(std::uint64_t addr)
{
    MemAccess a;
    a.addr = addr;
    return a;
}

MemAccess
W(std::uint64_t addr, std::uint64_t data)
{
    MemAccess a;
    a.addr = addr;
    a.type = AccessType::Write;
    a.data = data;
    return a;
}

} // anonymous namespace

int
main()
{
    const std::vector<std::pair<const char *, MemAccess>> stream = {
        {"Ra", R(blockA)},    {"Wb", W(blockB, 1)},
        {"Wb", W(blockB, 2)}, {"Rb", R(blockB)},
        {"Rb", R(blockB)},    {"Wb", W(blockB, 3)},
        {"Wa (silent)", W(blockA, 0)},
        {"Rb", R(blockB)},    {"Ra", R(blockA)},
    };

    stats::Table t("Figure 8: array operations per request "
                   "(reads+writes after each request)");
    t.setHeader({"request", "RMW", "WG", "WG+RB"});

    std::vector<mem::FunctionalMemory> mems(3);
    std::vector<CacheController> ctrls;
    const WriteScheme schemes[] = {WriteScheme::Rmw,
                                   WriteScheme::WriteGrouping,
                                   WriteScheme::WriteGroupingReadBypass};
    for (int i = 0; i < 3; ++i) {
        ControllerConfig cfg;
        cfg.scheme = schemes[i];
        ctrls.emplace_back(cfg, mems[i]);
        // Pre-warm both blocks so the example runs hit-only.
        ctrls.back().access(R(blockA));
        ctrls.back().access(R(blockB));
        ctrls.back().resetStats();
    }

    for (const auto &[label, acc] : stream) {
        std::vector<stats::Cell> row{std::string(label)};
        for (auto &c : ctrls) {
            const std::uint64_t before = c.demandAccesses();
            const AccessOutcome out = c.access(acc);
            const std::uint64_t ops = c.demandAccesses() - before;
            std::string cell = std::to_string(ops);
            if (out.bypassed)
                cell += " (bypassed)";
            row.push_back(cell);
        }
        t.addRow(std::move(row));
    }

    std::vector<stats::Cell> total{std::string("TOTAL")};
    for (auto &c : ctrls)
        total.push_back(static_cast<std::int64_t>(c.demandAccesses()));
    t.addRow(std::move(total));

    t.print(std::cout);
    std::cout << "\nPaper reference (Figure 8): WG groups the Wb "
                 "writes and elides the silent Wa's write-back; WG+RB "
                 "additionally bypasses the Rb/Ra Tag-Buffer hits.\n";
    return 0;
}
