/**
 * @file
 * Ablation — write-assist (Kim et al.) interaction with grouping.
 *
 * The adaptive pulse/voltage scheme attacks *dynamic write failures*;
 * the paper's techniques attack *write frequency*. They compose: every
 * row write WG eliminates is also a write-assist invocation the array
 * never pays. This bench reports the assist-level mix and the combined
 * write-energy factor for RMW vs WG vs WG+RB.
 */

#include <iostream>

#include "bench/common.hh"
#include "sram/write_assist.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    sram::WriteAssistParams ap;
    ap.weakRowFraction = 0.05; // a scaled-voltage operating point

    stats::Table t("Write-assist invocations and energy under each "
                   "scheme (gcc stream; weak rows 5%)");
    t.setHeader({"scheme", "row writes", "nominal", "wide pulse",
                 "boosted", "mean energy factor",
                 "write energy vs RMW"});
    t.setPrecision(3);

    trace::MarkovStream gen(trace::specProfile("gcc"));
    core::MultiSchemeRunner runner(bench::schemeConfigs(
        {}, {WriteScheme::Rmw, WriteScheme::WriteGrouping,
             WriteScheme::WriteGroupingReadBypass}));
    const auto res = runner.run(gen, bench::runConfig());

    double rmw_energy = 0.0;
    for (std::size_t i = 0; i < res.size(); ++i) {
        // Replay the scheme's row-write count through the assist model
        // (the row mix follows the stream's set distribution; we
        // approximate it as uniform over rows, which the weak map is
        // too).
        sram::WriteAssist assist(512, ap);
        const std::uint64_t writes = res[i].demandRowWrites;
        for (std::uint64_t w = 0; w < writes; ++w)
            assist.write(static_cast<std::uint32_t>((w * 73) % 512));

        const double energy =
            static_cast<double>(writes) * assist.meanEnergyFactor();
        if (i == 0)
            rmw_energy = energy;

        t.addRow({res[i].scheme, static_cast<std::int64_t>(writes),
                  static_cast<std::int64_t>(assist.nominalWrites()),
                  static_cast<std::int64_t>(assist.widePulseWrites()),
                  static_cast<std::int64_t>(assist.boostedWrites()),
                  assist.meanEnergyFactor(),
                  rmw_energy > 0 ? energy / rmw_energy : 1.0});
    }
    t.print(std::cout);

    std::cout
        << "\nReading: the adaptive assist keeps the per-write energy "
           "factor near 1 (vs the margined design's "
        << sram::WriteAssistParams{}.boostEnergyFactor
        << "x), and grouping multiplies the saving by cutting the "
           "number of assisted row writes outright — the two "
           "techniques are complementary, not competing.\n";
    return 0;
}
