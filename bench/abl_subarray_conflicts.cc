/**
 * @file
 * Ablation — read blocking under the three write engagement styles
 * (the §2 related-work comparison with Park et al.).
 *
 * Global RMW holds the shared read port for every write; Park's local
 * RMW confines the write-back to one sub-array so only same-sub-array
 * reads block; a Set-Buffer write-back (WG/WG+RB) never touches the
 * read path. This bench replays each benchmark's demand operations
 * through the sub-array model and reports the fraction of reads that
 * would have been delayed.
 */

#include <iostream>

#include "bench/common.hh"
#include "sram/subarray.hh"
#include "stats/table.hh"
#include "trace/markov_stream.hh"

int
main()
{
    using namespace c8t;

    constexpr std::uint32_t rows = 512;
    constexpr std::uint32_t rowsPerSub = 128;
    constexpr std::uint32_t writeBusy = 4; // RMW read+write phases
    const std::uint64_t n = bench::measureAccesses();

    stats::Table t("Reads blocked by in-flight writes (% of reads)");
    t.setHeader({"benchmark", "global RMW %", "LocalRMW %",
                 "buffered WB %"});

    for (const auto &p : trace::specProfiles()) {
        trace::MarkovStream gen(p);
        sram::SubarrayModel global(rows, rowsPerSub,
                                   sram::WriteStyle::GlobalRmw);
        sram::SubarrayModel local(rows, rowsPerSub,
                                  sram::WriteStyle::LocalRmw);
        sram::SubarrayModel buffered(
            rows, rowsPerSub, sram::WriteStyle::BufferedWriteback);

        std::uint64_t cycle = 0;
        trace::MemAccess a;
        for (std::uint64_t i = 0; i < n; ++i) {
            gen.next(a);
            cycle += a.gap + 1;
            const auto row =
                static_cast<std::uint32_t>((a.addr / 32) % rows);
            if (a.isWrite()) {
                global.write(row, cycle, writeBusy);
                local.write(row, cycle, writeBusy);
                buffered.write(row, cycle, writeBusy);
            } else {
                global.read(row, cycle);
                local.read(row, cycle);
                buffered.read(row, cycle);
            }
        }

        t.addRow({p.name,
                  100.0 * global.blockedReads() /
                      std::max<std::uint64_t>(global.reads(), 1),
                  100.0 * local.blockedReads() /
                      std::max<std::uint64_t>(local.reads(), 1),
                  100.0 * buffered.blockedReads() /
                      std::max<std::uint64_t>(buffered.reads(), 1)});
    }
    t.addRow({std::string("average"), stats::columnMean(t, 1),
              stats::columnMean(t, 2), stats::columnMean(t, 3)});
    t.print(std::cout);

    std::cout
        << "\nReading: LocalRMW removes most — but not all — of the "
           "read blocking RMW causes (same-sub-array reads still "
           "wait, and the paper notes the busy sub-array serves no "
           "other access); the Set-Buffer write-back removes it "
           "entirely, which is the §5.5 read-port-availability "
           "argument for WG/WG+RB.\n";
    return 0;
}
