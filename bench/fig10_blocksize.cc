/**
 * @file
 * Figure 10 — access reduction with 64 B blocks (32 KB cache).
 *
 * Paper: larger blocks raise the Set-Buffer hit rate, improving both
 * schemes: WG 29 % and WG+RB 37 % on average for 32 KB / 4-way / 64 B.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    mem::CacheConfig cache{32 * 1024, 4, 64};
    const auto all = bench::sweepSpec(
        cache, {WriteScheme::Rmw, WriteScheme::WriteGrouping,
                WriteScheme::WriteGroupingReadBypass});

    stats::Table t("Figure 10: cache access frequency reduction vs RMW "
                   "(32KB/4w/64B, %)");
    t.setHeader({"benchmark", "WG %", "WG+RB %"});
    for (const auto &res : all) {
        t.addRow({res[0].workload, bench::reductionPct(res[0], res[1]),
                  bench::reductionPct(res[0], res[2])});
    }
    t.addRow({std::string("average"), stats::columnMean(t, 1),
              stats::columnMean(t, 2)});
    t.print(std::cout);

    std::cout << "\nPaper reference: WG 29 % / WG+RB 37 % average — "
                 "both higher than the 32 B baseline because larger "
                 "blocks merge neighbouring reference blocks into one "
                 "set, raising the Set-Buffer hit rate.\n";
    return 0;
}
