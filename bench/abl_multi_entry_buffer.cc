/**
 * @file
 * Ablation — multi-entry Set-Buffer / Tag-Buffer (the natural
 * future-work extension of the paper's single-entry design).
 *
 * A deeper buffer keeps several write groups open at once, so groups
 * survive interleaved writes to other sets. This bench sweeps the
 * entry count for both WG and WG+RB.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    mem::CacheConfig cache;
    const core::RunConfig rc = bench::runConfig();
    const std::uint32_t depths[] = {1, 2, 4, 8};

    stats::Table t("Ablation: access reduction vs Set-Buffer depth "
                   "(average over 25 benchmarks, %)");
    t.setHeader({"entries", "WG %", "WG+RB %", "WG grouped writes %",
                 "WG+RB bypassed reads %"});

    for (const std::uint32_t depth : depths) {
        double wg_sum = 0, rb_sum = 0, grouped = 0, bypassed = 0;
        for (const auto &p : trace::specProfiles()) {
            trace::MarkovStream gen(p);
            std::vector<core::ControllerConfig> cfgs(3);
            for (auto &c : cfgs) {
                c.cache = cache;
                c.bufferEntries = depth;
            }
            cfgs[0].scheme = WriteScheme::Rmw;
            cfgs[1].scheme = WriteScheme::WriteGrouping;
            cfgs[2].scheme = WriteScheme::WriteGroupingReadBypass;

            core::MultiSchemeRunner runner(cfgs);
            const auto res = runner.run(gen, rc);
            wg_sum += bench::reductionPct(res[0], res[1]);
            rb_sum += bench::reductionPct(res[0], res[2]);
            grouped += 100.0 * res[1].groupedWrites /
                       std::max<std::uint64_t>(res[1].writes, 1);
            bypassed += 100.0 * res[2].bypassedReads /
                        std::max<std::uint64_t>(res[2].reads, 1);
        }
        const double n = trace::specProfiles().size();
        t.addRow({static_cast<std::int64_t>(depth), wg_sum / n,
                  rb_sum / n, grouped / n, bypassed / n});
    }
    t.print(std::cout);

    std::cout << "\nReading: the paper's single entry captures most of "
                 "the benefit; additional entries add diminishing "
                 "returns because most grouping opportunity is "
                 "short-range. Hardware cost grows linearly (one row "
                 "of latches + one tag descriptor per entry).\n";
    return 0;
}
