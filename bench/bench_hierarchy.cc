/**
 * @file
 * Two-level hierarchy — the paper's cache split as one bench
 * (DESIGN.md §14): a 6T direct-write L1 pinned at nominal supply over
 * an inclusive write-back 8T L2 whose supply is swept to near
 * threshold.
 *
 * The L1 keeps the fast, stable 6T array where latency matters; the
 * L2, which services only miss fetches and dirty-victim bursts, runs
 * the decoupled-read 8T cell and keeps scaling after the 6T baseline's
 * read stability collapses. The table shows hierarchy-wide energy per
 * access over the grid; the summary line is the claim — the 8T L2
 * stays operational several grid steps below the 6T floor.
 *
 * Appends one kind:"hierarchy" JSON-lines record to C8T_BENCH_JSON
 * (sweep throughput, per-scheme L2 min-Vdd, phase attribution with
 * C8T_PROF=1) for tools/bench_report.sh / bench_diff.sh.
 */

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/common.hh"
#include "core/controller.hh"
#include "core/vdd_sweep.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "sram/cell.hh"
#include "stats/json.hh"
#include "stats/table.hh"

namespace
{

using namespace c8t;

/** Append the kind:"hierarchy" perf record when C8T_BENCH_JSON is
 *  set (same shape as the kind:"vdd" record, plus the level split). */
void
emitHierarchyBenchJson(const core::VddSweepSpec &spec,
                       const core::VddSweepResult &result,
                       const core::RunConfig &rc, unsigned workers,
                       double wall_seconds,
                       const obs::prof::PhaseTimes *phases)
{
    const char *path = std::getenv("C8T_BENCH_JSON");
    if (!path || !*path)
        return;

    std::uint64_t config_runs = 0;
    for (const core::VddCurve &c : result.curves)
        config_runs += c.points.size();
    const double simulated =
        static_cast<double>(config_runs) *
        static_cast<double>(rc.warmupAccesses + rc.measureAccesses);

    std::ofstream os(path, std::ios::app);
    if (!os) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            std::cerr << "bench_hierarchy: cannot open C8T_BENCH_JSON=\""
                      << path << "\" for append; perf record disabled\n";
        }
        return;
    }
    os << "{\"kind\":\"hierarchy\",\"label\":\"hierarchy:"
       << stats::jsonEscape(result.workload) << "\""
       << ",\"l1\":\"" << spec.cache.toString() << "\""
       << ",\"l2\":\"" << spec.lowerLevels.front().cache.toString()
       << "\""
       << ",\"grid_points\":" << result.grid.size()
       << ",\"schemes\":" << result.curves.size()
       << ",\"workers\":" << workers
       << ",\"config_runs\":" << config_runs
       << ",\"warmup_accesses\":" << rc.warmupAccesses
       << ",\"measure_accesses\":" << rc.measureAccesses
       << ",\"simulated_accesses\":"
       << static_cast<std::uint64_t>(simulated)
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"accesses_per_sec\":"
       << (wall_seconds > 0.0 ? simulated / wall_seconds : 0.0)
       << ",\"l2_min_vdd\":{";
    bool first = true;
    for (const core::VddCurve &c : result.curves) {
        os << (first ? "" : ",") << '"' << stats::jsonEscape(c.scheme)
           << "\":";
        stats::jsonNumber(os, c.minVdd);
        first = false;
    }
    os << "}";
    if (phases) {
        os << ",\"phases\":{";
        for (std::size_t i = 0; i < obs::prof::kNumPhases; ++i) {
            os << "\""
               << obs::prof::toString(static_cast<obs::prof::Phase>(i))
               << "\":";
            stats::jsonNumber(os, static_cast<double>(phases->ns[i]) *
                                      1e-9);
            os << ",";
        }
        os << "\"total\":";
        stats::jsonNumber(os,
                          static_cast<double>(phases->totalNs()) * 1e-9);
        os << "}";
    }
    os << "}\n";
}

} // anonymous namespace

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    // 64 KB / 4-way / 32 B 6T L1 at nominal over a 256 KB / 8-way 8T
    // L2; the scheme axis and the grid voltage apply to the L2.
    core::VddSweepSpec spec;
    core::LevelConfig l2; // default 256 KB / 8-way / 32 B / LRU
    spec.lowerLevels.push_back(l2);

    const trace::StreamParams profile = trace::specProfile("gcc");
    spec.makeGenerator =
        [profile]() -> std::unique_ptr<trace::AccessGenerator> {
        return std::make_unique<trace::MarkovStream>(profile);
    };
    spec.streamKey = trace::streamSignature(profile);

    const bool prof_on = obs::prof::enabled();
    obs::prof::PhaseTimes phases_before;
    if (prof_on) {
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
        phases_before = obs::globalMetrics().phaseTimes();
    }
    const auto t0 = std::chrono::steady_clock::now();

    const unsigned workers = core::ParallelSweeper::defaultWorkers();
    const core::RunConfig rc = bench::runConfig();
    core::VddSweepResult result = core::runVddSweep(spec, rc, workers);

    {
        const obs::prof::ScopedPhase serialize_scope(
            obs::prof::Phase::Serialize);
        stats::Table t("Two-level sweep: hierarchy-wide energy per "
                       "access (pJ; * = L2 not operational), " +
                       result.workload +
                       " on 6T 64KB/4w L1 + swept 256KB/8w L2");
        std::vector<std::string> header{"L2 vdd"};
        for (const core::VddCurve &c : result.curves)
            header.push_back(c.scheme + " pJ");
        t.setHeader(header);
        t.setPrecision(3);
        for (std::size_t gi = 0; gi < result.grid.size(); ++gi) {
            std::vector<stats::Cell> row{result.grid[gi]};
            for (const core::VddCurve &c : result.curves) {
                std::ostringstream cell;
                cell.precision(3);
                cell << std::fixed
                     << c.points[gi].energyPerAccess * 1e12;
                if (!c.points[gi].operational)
                    cell << '*';
                row.emplace_back(cell.str());
            }
            t.addRow(row);
        }
        t.print(std::cout);

        std::cout << "\nmin operational L2 Vdd (post-ECC word failure "
                     "rate <= "
                  << result.failureThreshold << "):";
        for (const core::VddCurve &c : result.curves) {
            std::cout << "  " << c.scheme << " ("
                      << sram::toString(c.cell) << ") " << c.minVdd
                      << " V";
        }
        std::cout << "\n";

        const core::VddCurve *sixt =
            result.curve(WriteScheme::SixTDirect);
        const core::VddCurve *wgrb =
            result.curve(WriteScheme::WriteGroupingReadBypass);
        std::cout << "8T L2 min-Vdd below the 6T floor: "
                  << (wgrb->minVdd < sixt->minVdd ? "yes" : "NO")
                  << " (" << wgrb->minVdd << " V vs " << sixt->minVdd
                  << " V)\n";

        std::cout << "\nPaper reference: the L1 keeps the fast 6T "
                     "array at nominal supply while the L2 — touched "
                     "only by miss fetches and same-set dirty-victim "
                     "bursts — runs the decoupled-read 8T cell near "
                     "threshold, cutting the big array's leakage "
                     "without lengthening the L1 hit path.\n";
    }

    // Flush the engine's kind:"vdd" record first so the serialization
    // above is attributed to it, then append our own summary record.
    result.emitBenchRecord();

    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    obs::prof::PhaseTimes run_phases;
    if (prof_on) {
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
        const obs::prof::PhaseTimes after =
            obs::globalMetrics().phaseTimes();
        for (std::size_t i = 0; i < obs::prof::kNumPhases; ++i) {
            run_phases.ns[i] = after.ns[i] - phases_before.ns[i];
            run_phases.scopes[i] =
                after.scopes[i] - phases_before.scopes[i];
        }
    }
    emitHierarchyBenchJson(spec, result, rc, workers, wall_seconds,
                           prof_on ? &run_phases : nullptr);
    return 0;
}
