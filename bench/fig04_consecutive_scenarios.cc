/**
 * @file
 * Figure 4 — breakdown of consecutive same-set access scenarios.
 *
 * Paper: RR / RW / WW / WR shares of consecutive access pairs for the
 * baseline 64 KB / 4-way / 32 B cache; on average 27 % of consecutive
 * accesses target the same set, with bwaves' WW share the highest
 * (24 %).
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;

    mem::CacheConfig cache;
    mem::AddrLayout layout(cache.blockBytes, cache.numSets());

    stats::Table t("Figure 4: consecutive same-set scenarios "
                   "(% of consecutive access pairs)");
    t.setHeader({"benchmark", "RR %", "RW %", "WW %", "WR %",
                 "same-set %"});

    for (const auto &p : trace::specProfiles()) {
        trace::MarkovStream gen(p);
        const core::StreamStats s = core::analyzeStream(
            gen, layout, bench::measureAccesses());
        t.addRow({p.name, 100.0 * s.rrShare, 100.0 * s.rwShare,
                  100.0 * s.wwShare, 100.0 * s.wrShare,
                  100.0 * s.sameSetShare});
    }

    t.addRow({std::string("average"), stats::columnMean(t, 1),
              stats::columnMean(t, 2), stats::columnMean(t, 3),
              stats::columnMean(t, 4), stats::columnMean(t, 5)});
    t.print(std::cout);

    std::cout << "\nPaper reference: 27 % of consecutive accesses are "
                 "same-set on average; RR and WW dominate; bwaves WW "
                 "share is the highest (24 %).\n";
    return 0;
}
