/**
 * @file
 * Figure 9 — cache access frequency reduction on the baseline cache.
 *
 * Paper: reduction of data-array accesses relative to RMW for WG and
 * WG+RB, 64 KB / 4-way / 32 B / LRU; averages 27 % (WG) and 33 %
 * (WG+RB); bwaves peaks at 47 % for WG; WG+RB beats WG everywhere.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    mem::CacheConfig cache; // 64 KB / 4-way / 32 B / LRU
    const auto all = bench::sweepSpec(
        cache, {WriteScheme::Rmw, WriteScheme::WriteGrouping,
                WriteScheme::WriteGroupingReadBypass});

    stats::Table t("Figure 9: cache access frequency reduction vs RMW "
                   "(64KB/4w/32B, %)");
    t.setHeader({"benchmark", "WG %", "WG+RB %"});
    for (const auto &res : all) {
        t.addRow({res[0].workload, bench::reductionPct(res[0], res[1]),
                  bench::reductionPct(res[0], res[2])});
    }
    t.addRow({std::string("average"), stats::columnMean(t, 1),
              stats::columnMean(t, 2)});
    t.print(std::cout);

    std::cout << "\nPaper reference: WG 27 % / WG+RB 33 % average; "
                 "bwaves best for WG (47 %), wrf and lbm close behind; "
                 "WG+RB outperforms WG on every benchmark; gamess and "
                 "cactusADM profit most from read bypassing.\n";
    return 0;
}
