/**
 * @file
 * Figure 3 — read and write access frequency.
 *
 * Paper: reads and writes as a share of executed instructions for the
 * 25 SPEC CPU2006 benchmarks; averages 26 % reads and 14 % writes,
 * with write-intensive applications (bwaves) above 22 % writes.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;

    mem::CacheConfig cache; // baseline 64 KB / 4-way / 32 B
    mem::AddrLayout layout(cache.blockBytes, cache.numSets());

    stats::Table t("Figure 3: read and write access frequency "
                   "(% of executed instructions)");
    t.setHeader({"benchmark", "read %", "write %", "memory %"});

    for (const auto &p : trace::specProfiles()) {
        trace::MarkovStream gen(p);
        const core::StreamStats s = core::analyzeStream(
            gen, layout, bench::measureAccesses());
        t.addRow({p.name, 100.0 * s.readInstrFraction,
                  100.0 * s.writeInstrFraction,
                  100.0 * (s.readInstrFraction + s.writeInstrFraction)});
    }

    t.addRow({std::string("average"), stats::columnMean(t, 1),
              stats::columnMean(t, 2), stats::columnMean(t, 3)});
    t.print(std::cout);

    std::cout << "\nPaper reference: 26 % reads / 14 % writes on "
                 "average; bwaves writes > 22 %.\n";
    return 0;
}
