/**
 * @file
 * Figure 11 — access reduction across cache sizes (32 KB and 128 KB).
 *
 * Paper: the reductions are essentially insensitive to cache size:
 * WG 26.9 % / 26.6 % and WG+RB 32.6 % / 32.1 % for 32 KB / 128 KB.
 */

#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    const std::vector<WriteScheme> schemes = {
        WriteScheme::Rmw, WriteScheme::WriteGrouping,
        WriteScheme::WriteGroupingReadBypass};

    const auto small = bench::sweepSpec({32 * 1024, 4, 32}, schemes);
    const auto large = bench::sweepSpec({128 * 1024, 4, 32}, schemes);

    stats::Table t("Figure 11: cache access frequency reduction vs RMW "
                   "for 32KB and 128KB caches (4w/32B, %)");
    t.setHeader({"benchmark", "WG (32KB)", "WG+RB (32KB)", "WG (128KB)",
                 "WG+RB (128KB)"});
    for (std::size_t i = 0; i < small.size(); ++i) {
        t.addRow({small[i][0].workload,
                  bench::reductionPct(small[i][0], small[i][1]),
                  bench::reductionPct(small[i][0], small[i][2]),
                  bench::reductionPct(large[i][0], large[i][1]),
                  bench::reductionPct(large[i][0], large[i][2])});
    }
    t.addRow({std::string("average"), stats::columnMean(t, 1),
              stats::columnMean(t, 2), stats::columnMean(t, 3),
              stats::columnMean(t, 4)});
    t.print(std::cout);

    std::cout << "\nPaper reference: WG 26.9 % (32KB) vs 26.6 % "
                 "(128KB); WG+RB 32.6 % vs 32.1 % — the technique is "
                 "insensitive to cache size.\n";
    return 0;
}
