/**
 * @file
 * Ablation — all six write schemes on the recognisable kernel
 * workloads.
 *
 * Shows where each design point lands when the access pattern is a
 * known program shape instead of a calibrated SPEC stream: streaming
 * copy (dense WW), stencil (read reuse), pointer chase (no locality),
 * hash update (RMW-at-program-level with silent stores), and blocked
 * transpose (mixed strides).
 */

#include <iostream>
#include <memory>

#include "bench/common.hh"
#include "stats/table.hh"
#include "trace/kernels.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    const std::vector<WriteScheme> schemes = {
        WriteScheme::SixTDirect,    WriteScheme::Rmw,
        WriteScheme::LocalRmw,      WriteScheme::WordGranular,
        WriteScheme::WriteGrouping, WriteScheme::WriteGroupingReadBypass,
    };

    std::vector<std::unique_ptr<trace::AccessGenerator>> kernels;
    kernels.push_back(
        std::make_unique<trace::StreamCopyKernel>(200'000, 2));
    kernels.push_back(
        std::make_unique<trace::StencilKernel>(200'000, 2));
    kernels.push_back(
        std::make_unique<trace::PointerChaseKernel>(65536, 400'000));
    kernels.push_back(std::make_unique<trace::HashUpdateKernel>(
        65536, 200'000, 0.4, 0.8));
    kernels.push_back(std::make_unique<trace::TransposeKernel>(512, 8));
    kernels.push_back(std::make_unique<trace::FillKernel>(150'000, 4));

    stats::Table t("Demand array accesses per scheme on kernel "
                   "workloads (normalised to RMW = 1.000)");
    t.setHeader({"kernel", "6T", "RMW", "LocalRMW", "WordGranular",
                 "WG", "WG+RB"});
    t.setPrecision(3);

    const core::RunConfig rc = bench::runConfig();
    for (auto &k : kernels) {
        core::MultiSchemeRunner runner(
            bench::schemeConfigs({}, schemes));
        const auto res = runner.run(*k, rc);
        const double rmw = static_cast<double>(res[1].demandAccesses);

        std::vector<stats::Cell> row{res[0].workload};
        for (const auto &r : res)
            row.push_back(static_cast<double>(r.demandAccesses) / rmw);
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout
        << "\nReading: 6T/WordGranular are the no-RMW reference "
           "points; LocalRMW matches RMW in accesses (it only helps "
           "timing); WG approaches the reference on store-dense "
           "kernels and WG+RB also recovers read reuse. Pointer "
           "chase (read-only, no locality) is the worst case: nothing "
           "to group, nothing lost.\n";
    return 0;
}
