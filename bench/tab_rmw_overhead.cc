/**
 * @file
 * The §1/§5 claim table — RMW's access-frequency inflation.
 *
 * Paper: "our simulation results show that RMW increases cache access
 * frequency by more than 32% on average (max 47%)" relative to a
 * conventional (6T) cache that needs one array access per request.
 */

#include <algorithm>
#include <iostream>

#include "bench/common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    mem::CacheConfig cache;
    const auto all = bench::sweepSpec(
        cache, {WriteScheme::SixTDirect, WriteScheme::Rmw});

    stats::Table t("RMW access-frequency increase over a conventional "
                   "(6T) cache (%)");
    t.setHeader({"benchmark", "6T accesses", "RMW accesses",
                 "increase %"});

    double max_inc = 0.0;
    std::string max_name;
    for (const auto &res : all) {
        const double inc =
            100.0 * (static_cast<double>(res[1].demandAccesses) /
                         res[0].demandAccesses -
                     1.0);
        if (inc > max_inc) {
            max_inc = inc;
            max_name = res[0].workload;
        }
        t.addRow({res[0].workload,
                  static_cast<std::int64_t>(res[0].demandAccesses),
                  static_cast<std::int64_t>(res[1].demandAccesses),
                  inc});
    }
    t.addRow({std::string("average"), std::string("-"),
              std::string("-"), stats::columnMean(t, 3)});
    t.print(std::cout);

    std::cout << "\nMaximum increase: " << max_inc << " % (" << max_name
              << ")\nPaper reference: more than 32 % on average, "
                 "maximum 47 %.\n";
    return 0;
}
