/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: per-access
 * cost of each write scheme's controller path, the stream generator,
 * and the SEC-DED codec. These guard the simulation's own performance
 * (the full figure sweeps run hundreds of millions of accesses).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "mem/cache.hh"
#include "mem/simd.hh"
#include "sram/ecc.hh"
#include "trace/markov_stream.hh"
#include "trace/replay.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;

/** Way-compare kernel input: flat per-set tag rows shaped like the
 *  default cache (8 ways), with needles that hit a different way per
 *  lookup so the match is never branch-predicted away. */
struct WayCompareFixture
{
    static constexpr std::uint32_t kWays = 8;
    static constexpr std::size_t kSets = 256;

    std::vector<mem::Addr> tags;    // kSets rows of kWays tags
    std::vector<mem::Addr> needles; // one per lookup, cycling hit ways

    WayCompareFixture()
    {
        tags.resize(kSets * kWays);
        needles.resize(kSets);
        std::uint64_t v = 0x9e3779b97f4a7c15ull;
        for (std::size_t i = 0; i < tags.size(); ++i) {
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            tags[i] = v;
        }
        for (std::size_t s = 0; s < kSets; ++s)
            needles[s] = tags[s * kWays + s % kWays];
    }

    /** One pass of kSets lookups at @p level; returns the OR of the
     *  masks so the compiler cannot elide the compares. */
    std::uint64_t passAt(mem::simd::SimdLevel level) const
    {
        std::uint64_t acc = 0;
        for (std::size_t s = 0; s < kSets; ++s) {
            acc |= mem::simd::matchBits(level, tags.data() + s * kWays,
                                        kWays, needles[s]);
        }
        return acc;
    }
};

/**
 * The vectorized way-compare in isolation, per dispatch level.
 * items/s is tag lookups (one full 8-way compare each); the ratio
 * between the /scalar row and the /sse2 / /avx2 rows is the SIMD
 * speedup of the kernel alone, uncontaminated by the rest of the
 * access path. Levels the CPU cannot run are skipped.
 */
void
BM_WayCompare(benchmark::State &state)
{
    const auto level =
        static_cast<mem::simd::SimdLevel>(state.range(0));
    if (mem::simd::setLevel(level) != level) {
        state.SkipWithError("SIMD level unsupported on this CPU");
        return;
    }
    static const WayCompareFixture fixture;
    for (auto _ : state)
        benchmark::DoNotOptimize(fixture.passAt(level));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(WayCompareFixture::kSets));
    state.SetLabel(mem::simd::toString(level));
}
BENCHMARK(BM_WayCompare)
    ->Arg(static_cast<int>(mem::simd::SimdLevel::Scalar))
    ->Arg(static_cast<int>(mem::simd::SimdLevel::Sse2))
    ->Arg(static_cast<int>(mem::simd::SimdLevel::Avx2));

void
BM_MarkovStreamGeneration(benchmark::State &state)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    trace::MemAccess a;
    for (auto _ : state) {
        gen.next(a);
        benchmark::DoNotOptimize(a.addr);
    }
}
BENCHMARK(BM_MarkovStreamGeneration);

/**
 * Generator-only throughput of the batched path: one fillChunk() call
 * per state.range(0)-access chunk, no controller attached. items/s is
 * generated accesses per second; compare against
 * BM_MarkovStreamNextLoop (the identical work through per-access
 * next()) to read off the batching speedup alone.
 */
void
BM_MarkovStreamFillChunk(benchmark::State &state)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    std::vector<trace::MemAccess> chunk(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        gen.fillChunk(chunk.data(), chunk.size());
        benchmark::DoNotOptimize(chunk.front().addr);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MarkovStreamFillChunk)->Arg(64)->Arg(1024)->Arg(4096);

/** Per-access next() over the same chunk sizes, for a like-for-like
 *  items/s comparison with BM_MarkovStreamFillChunk. */
void
BM_MarkovStreamNextLoop(benchmark::State &state)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    std::vector<trace::MemAccess> chunk(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        for (auto &a : chunk)
            gen.next(a);
        benchmark::DoNotOptimize(chunk.front().addr);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MarkovStreamNextLoop)->Arg(64)->Arg(1024)->Arg(4096);

/** Zero-copy replay of a cached stream (the StreamCache hit path). */
void
BM_ReplayFillChunk(benchmark::State &state)
{
    constexpr std::size_t kStream = 1u << 20;
    auto buffer =
        std::make_shared<std::vector<trace::MemAccess>>(kStream);
    {
        trace::MarkovStream gen(trace::specProfile("gcc"));
        gen.fillChunk(buffer->data(), kStream);
    }
    trace::ReplayGenerator replay("gcc", buffer);
    std::vector<trace::MemAccess> chunk(4096);
    for (auto _ : state) {
        if (replay.fillChunk(chunk.data(), chunk.size()) < chunk.size())
            replay.reset();
        benchmark::DoNotOptimize(chunk.front().addr);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_ReplayFillChunk);

void
BM_ControllerAccess(benchmark::State &state)
{
    const auto scheme = static_cast<core::WriteScheme>(state.range(0));
    trace::MarkovStream gen(trace::specProfile("gcc"));
    mem::FunctionalMemory memory;
    core::ControllerConfig cfg;
    cfg.scheme = scheme;
    core::CacheController ctrl(cfg, memory);

    trace::MemAccess a;
    for (auto _ : state) {
        gen.next(a);
        benchmark::DoNotOptimize(ctrl.access(a).data);
    }
    state.SetLabel(toString(scheme));
}
BENCHMARK(BM_ControllerAccess)
    ->Arg(static_cast<int>(core::WriteScheme::SixTDirect))
    ->Arg(static_cast<int>(core::WriteScheme::Rmw))
    ->Arg(static_cast<int>(core::WriteScheme::WriteGrouping))
    ->Arg(static_cast<int>(core::WriteScheme::WriteGroupingReadBypass));

/**
 * End-to-end sweep throughput: every SPEC profile through RMW and
 * WG+RB on the default cache, fanned across state.range(0) workers.
 * items/s is simulated accesses per wall-clock second, so the ratio
 * between the /1 row and the /N rows is the sweep engine's speedup.
 */
void
BM_SweepThroughput(benchmark::State &state)
{
    const unsigned workers = static_cast<unsigned>(state.range(0));
    const mem::CacheConfig cache;
    const std::vector<core::WriteScheme> schemes = {
        core::WriteScheme::Rmw,
        core::WriteScheme::WriteGroupingReadBypass};
    const auto jobs = core::specSweepJobs(cache, schemes);
    const core::RunConfig rc{2'000, 20'000};
    const core::ParallelSweeper sweeper(workers);

    for (auto _ : state) {
        const auto results = sweeper.run(jobs, rc, "bench_sweep");
        benchmark::DoNotOptimize(results.front().front().demandAccesses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(jobs.size()) *
        static_cast<std::int64_t>(schemes.size()) *
        static_cast<std::int64_t>(rc.warmupAccesses + rc.measureAccesses));
    state.SetLabel("workers=" + std::to_string(sweeper.workers()));
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_SecDedEncode(benchmark::State &state)
{
    std::uint64_t v = 0x123456789abcdef0ull;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sram::SecDed72::encode(v));
        ++v;
    }
}
BENCHMARK(BM_SecDedEncode);

void
BM_SecDedDecodeCorrected(benchmark::State &state)
{
    sram::Codeword72 cw = sram::SecDed72::encode(0xdeadbeefcafef00dull);
    cw.flip(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(sram::SecDed72::decode(cw).data);
}
BENCHMARK(BM_SecDedDecodeCorrected);

/**
 * Append one kind:"micro" perf record per supported dispatch level
 * when C8T_BENCH_JSON is set, alongside the sweep engine's
 * kind:"sweep" and the voltage sweep's kind:"vdd" rows (same
 * JSON-lines file, same accesses_per_sec rate field, so
 * tools/bench_diff.sh pairs them on (kind, label, workers) like any
 * other record). The rate is measured here with a fixed-work wall
 * clock rather than scraped from google-benchmark, so the record
 * exists even when the binary runs with a --benchmark_filter that
 * excludes BM_WayCompare.
 */
void
emitWayCompareMicroRecords()
{
    const char *path = std::getenv("C8T_BENCH_JSON");
    if (!path || !*path)
        return;

    std::ofstream os(path, std::ios::app);
    if (!os) {
        std::cerr << "micro_perf: cannot open C8T_BENCH_JSON=\"" << path
                  << "\" for append; perf records disabled\n";
        return;
    }

    const WayCompareFixture fixture;

    // ~16M lookups, best of 3: long enough to be stable, short
    // enough to not dominate the report run.
    constexpr int kReps = 3;
    constexpr std::size_t kPasses = 1u << 16;
    constexpr double kLookups =
        static_cast<double>(kPasses) * WayCompareFixture::kSets;
    const auto timeLevel = [&](mem::simd::SimdLevel level) {
        double best_seconds = 0.0;
        std::uint64_t sink = 0;
        for (int rep = 0; rep < kReps; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            for (std::size_t p = 0; p < kPasses; ++p)
                sink |= fixture.passAt(level);
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            if (rep == 0 || dt.count() < best_seconds)
                best_seconds = dt.count();
        }
        benchmark::DoNotOptimize(sink);
        return best_seconds;
    };

    for (mem::simd::SimdLevel level :
         {mem::simd::SimdLevel::Scalar, mem::simd::SimdLevel::Sse2,
          mem::simd::SimdLevel::Avx2}) {
        if (mem::simd::setLevel(level) != level)
            continue; // CPU cannot run this level

        const double best_seconds = timeLevel(level);
        os << "{\"kind\":\"micro\",\"label\":\"way_compare:"
           << mem::simd::toString(level) << "\""
           << ",\"workers\":1"
           << ",\"ways\":" << WayCompareFixture::kWays
           << ",\"lookups\":" << static_cast<std::uint64_t>(kLookups)
           << ",\"wall_seconds\":" << best_seconds
           << ",\"accesses_per_sec\":"
           << (best_seconds > 0.0 ? kLookups / best_seconds : 0.0)
           << "}\n";
    }

    // The guard for C8T_SIMD=auto: what the calibrator picks and what
    // it delivers. A future regression where auto resolves to a level
    // measurably slower than the named records shows up in
    // bench_diff.sh as a drop on this row.
    const mem::simd::SimdLevel resolved =
        mem::simd::autoCalibratedLevel();
    mem::simd::setLevel(resolved);
    const double auto_seconds = timeLevel(resolved);
    os << "{\"kind\":\"micro\",\"label\":\"way_compare:auto\""
       << ",\"workers\":1"
       << ",\"resolved\":\"" << mem::simd::toString(resolved) << "\""
       << ",\"ways\":" << WayCompareFixture::kWays
       << ",\"lookups\":" << static_cast<std::uint64_t>(kLookups)
       << ",\"wall_seconds\":" << auto_seconds
       << ",\"accesses_per_sec\":"
       << (auto_seconds > 0.0 ? kLookups / auto_seconds : 0.0)
       << "}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    emitWayCompareMicroRecords();
    return 0;
}
