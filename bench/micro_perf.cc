/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: per-access
 * cost of each write scheme's controller path, the stream generator,
 * and the SEC-DED codec. These guard the simulation's own performance
 * (the full figure sweeps run hundreds of millions of accesses).
 */

#include <benchmark/benchmark.h>

#include "core/controller.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "mem/cache.hh"
#include "sram/ecc.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;

void
BM_MarkovStreamGeneration(benchmark::State &state)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    trace::MemAccess a;
    for (auto _ : state) {
        gen.next(a);
        benchmark::DoNotOptimize(a.addr);
    }
}
BENCHMARK(BM_MarkovStreamGeneration);

void
BM_ControllerAccess(benchmark::State &state)
{
    const auto scheme = static_cast<core::WriteScheme>(state.range(0));
    trace::MarkovStream gen(trace::specProfile("gcc"));
    mem::FunctionalMemory memory;
    core::ControllerConfig cfg;
    cfg.scheme = scheme;
    core::CacheController ctrl(cfg, memory);

    trace::MemAccess a;
    for (auto _ : state) {
        gen.next(a);
        benchmark::DoNotOptimize(ctrl.access(a).data);
    }
    state.SetLabel(toString(scheme));
}
BENCHMARK(BM_ControllerAccess)
    ->Arg(static_cast<int>(core::WriteScheme::SixTDirect))
    ->Arg(static_cast<int>(core::WriteScheme::Rmw))
    ->Arg(static_cast<int>(core::WriteScheme::WriteGrouping))
    ->Arg(static_cast<int>(core::WriteScheme::WriteGroupingReadBypass));

/**
 * End-to-end sweep throughput: every SPEC profile through RMW and
 * WG+RB on the default cache, fanned across state.range(0) workers.
 * items/s is simulated accesses per wall-clock second, so the ratio
 * between the /1 row and the /N rows is the sweep engine's speedup.
 */
void
BM_SweepThroughput(benchmark::State &state)
{
    const unsigned workers = static_cast<unsigned>(state.range(0));
    const mem::CacheConfig cache;
    const std::vector<core::WriteScheme> schemes = {
        core::WriteScheme::Rmw,
        core::WriteScheme::WriteGroupingReadBypass};
    const auto jobs = core::specSweepJobs(cache, schemes);
    const core::RunConfig rc{2'000, 20'000};
    const core::ParallelSweeper sweeper(workers);

    for (auto _ : state) {
        const auto results = sweeper.run(jobs, rc, "bench_sweep");
        benchmark::DoNotOptimize(results.front().front().demandAccesses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(jobs.size()) *
        static_cast<std::int64_t>(schemes.size()) *
        static_cast<std::int64_t>(rc.warmupAccesses + rc.measureAccesses));
    state.SetLabel("workers=" + std::to_string(sweeper.workers()));
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_SecDedEncode(benchmark::State &state)
{
    std::uint64_t v = 0x123456789abcdef0ull;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sram::SecDed72::encode(v));
        ++v;
    }
}
BENCHMARK(BM_SecDedEncode);

void
BM_SecDedDecodeCorrected(benchmark::State &state)
{
    sram::Codeword72 cw = sram::SecDed72::encode(0xdeadbeefcafef00dull);
    cw.flip(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(sram::SecDed72::decode(cw).data);
}
BENCHMARK(BM_SecDedDecodeCorrected);

} // anonymous namespace

BENCHMARK_MAIN();
