/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: per-access
 * cost of each write scheme's controller path, the stream generator,
 * and the SEC-DED codec. These guard the simulation's own performance
 * (the full figure sweeps run hundreds of millions of accesses).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/controller.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "mem/cache.hh"
#include "sram/ecc.hh"
#include "trace/markov_stream.hh"
#include "trace/replay.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;

void
BM_MarkovStreamGeneration(benchmark::State &state)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    trace::MemAccess a;
    for (auto _ : state) {
        gen.next(a);
        benchmark::DoNotOptimize(a.addr);
    }
}
BENCHMARK(BM_MarkovStreamGeneration);

/**
 * Generator-only throughput of the batched path: one fillChunk() call
 * per state.range(0)-access chunk, no controller attached. items/s is
 * generated accesses per second; compare against
 * BM_MarkovStreamNextLoop (the identical work through per-access
 * next()) to read off the batching speedup alone.
 */
void
BM_MarkovStreamFillChunk(benchmark::State &state)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    std::vector<trace::MemAccess> chunk(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        gen.fillChunk(chunk.data(), chunk.size());
        benchmark::DoNotOptimize(chunk.front().addr);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MarkovStreamFillChunk)->Arg(64)->Arg(1024)->Arg(4096);

/** Per-access next() over the same chunk sizes, for a like-for-like
 *  items/s comparison with BM_MarkovStreamFillChunk. */
void
BM_MarkovStreamNextLoop(benchmark::State &state)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    std::vector<trace::MemAccess> chunk(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        for (auto &a : chunk)
            gen.next(a);
        benchmark::DoNotOptimize(chunk.front().addr);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MarkovStreamNextLoop)->Arg(64)->Arg(1024)->Arg(4096);

/** Zero-copy replay of a cached stream (the StreamCache hit path). */
void
BM_ReplayFillChunk(benchmark::State &state)
{
    constexpr std::size_t kStream = 1u << 20;
    auto buffer =
        std::make_shared<std::vector<trace::MemAccess>>(kStream);
    {
        trace::MarkovStream gen(trace::specProfile("gcc"));
        gen.fillChunk(buffer->data(), kStream);
    }
    trace::ReplayGenerator replay("gcc", buffer);
    std::vector<trace::MemAccess> chunk(4096);
    for (auto _ : state) {
        if (replay.fillChunk(chunk.data(), chunk.size()) < chunk.size())
            replay.reset();
        benchmark::DoNotOptimize(chunk.front().addr);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_ReplayFillChunk);

void
BM_ControllerAccess(benchmark::State &state)
{
    const auto scheme = static_cast<core::WriteScheme>(state.range(0));
    trace::MarkovStream gen(trace::specProfile("gcc"));
    mem::FunctionalMemory memory;
    core::ControllerConfig cfg;
    cfg.scheme = scheme;
    core::CacheController ctrl(cfg, memory);

    trace::MemAccess a;
    for (auto _ : state) {
        gen.next(a);
        benchmark::DoNotOptimize(ctrl.access(a).data);
    }
    state.SetLabel(toString(scheme));
}
BENCHMARK(BM_ControllerAccess)
    ->Arg(static_cast<int>(core::WriteScheme::SixTDirect))
    ->Arg(static_cast<int>(core::WriteScheme::Rmw))
    ->Arg(static_cast<int>(core::WriteScheme::WriteGrouping))
    ->Arg(static_cast<int>(core::WriteScheme::WriteGroupingReadBypass));

/**
 * End-to-end sweep throughput: every SPEC profile through RMW and
 * WG+RB on the default cache, fanned across state.range(0) workers.
 * items/s is simulated accesses per wall-clock second, so the ratio
 * between the /1 row and the /N rows is the sweep engine's speedup.
 */
void
BM_SweepThroughput(benchmark::State &state)
{
    const unsigned workers = static_cast<unsigned>(state.range(0));
    const mem::CacheConfig cache;
    const std::vector<core::WriteScheme> schemes = {
        core::WriteScheme::Rmw,
        core::WriteScheme::WriteGroupingReadBypass};
    const auto jobs = core::specSweepJobs(cache, schemes);
    const core::RunConfig rc{2'000, 20'000};
    const core::ParallelSweeper sweeper(workers);

    for (auto _ : state) {
        const auto results = sweeper.run(jobs, rc, "bench_sweep");
        benchmark::DoNotOptimize(results.front().front().demandAccesses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(jobs.size()) *
        static_cast<std::int64_t>(schemes.size()) *
        static_cast<std::int64_t>(rc.warmupAccesses + rc.measureAccesses));
    state.SetLabel("workers=" + std::to_string(sweeper.workers()));
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_SecDedEncode(benchmark::State &state)
{
    std::uint64_t v = 0x123456789abcdef0ull;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sram::SecDed72::encode(v));
        ++v;
    }
}
BENCHMARK(BM_SecDedEncode);

void
BM_SecDedDecodeCorrected(benchmark::State &state)
{
    sram::Codeword72 cw = sram::SecDed72::encode(0xdeadbeefcafef00dull);
    cw.flip(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(sram::SecDed72::decode(cw).data);
}
BENCHMARK(BM_SecDedDecodeCorrected);

} // anonymous namespace

BENCHMARK_MAIN();
