/**
 * @file
 * Design-space explorer soak (DESIGN.md §12): the full cross-product
 * the roadmap's production-scale story is built around — every
 * calibrated SPEC profile × cache geometry × replacement × scheme ×
 * a three-point supply grid, reduced to per-workload Pareto frontiers.
 *
 * 25 workloads × 4 sizes × 3 ways × 2 blocks × 2 replacements
 * = 1200 cells × 4 schemes × 3 grid points = 14,400 config-runs,
 * comfortably past the 10^4 acceptance floor with the default window.
 * The run checkpoints into a throwaway directory (exercising the
 * serialize path) and reports config-runs/sec plus the stream-cache
 * hit rate — the dedup claim, measured.
 *
 * The per-run window defaults to 2000 measured accesses (ranking
 * designs needs far fewer accesses than absolute-rate reporting);
 * C8T_BENCH_ACCESSES overrides it like every other bench.
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "bench/common.hh"
#include "core/explorer.hh"
#include "obs/prof.hh"
#include "sram/cell.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;

    core::ExplorerSpec spec;
    spec.label = "bench_explorer";
    spec.workloads = trace::specBenchmarkNames();
    spec.sizesKb = {16, 32, 64, 128};
    spec.ways = {2, 4, 8};
    spec.blocks = {32, 64};
    spec.replacements = {mem::ReplKind::Lru, mem::ReplKind::Fifo};
    spec.vddGrid = {1.0, 0.9, 0.8};
    spec.cellsPerShard = 16;

    // Throwaway checkpoint directory: exercises the shard-serialize
    // path on every shard without leaving state behind.
    char ckpt[] = "/tmp/c8t_bench_explorer_XXXXXX";
    if (mkdtemp(ckpt))
        spec.checkpointDir = ckpt;

    core::RunConfig rc{200, 2000};
    if (std::getenv("C8T_BENCH_ACCESSES"))
        rc = bench::runConfig();
    else
        std::cerr << "bench: measuring " << rc.measureAccesses
                  << " accesses per config-run (set C8T_BENCH_ACCESSES "
                     "to override)\n";

    std::cerr << "bench_explorer: " << spec.configRunCount()
              << " config-runs over " << spec.cellCount() << " cells ("
              << spec.shardCount() << " shards)\n";
    core::ExploreResult result = core::runExplore(spec, rc);

    {
        const obs::prof::ScopedPhase serialize_scope(
            obs::prof::Phase::Serialize);
        stats::Table t("explore frontiers: best energy design per "
                       "workload (of " +
                       std::to_string(result.summaries.size()) +
                       " design points; energy pJ at min Vdd)");
        t.setHeader({"workload", "frontier", "config", "repl", "scheme",
                     "minVdd", "energy pJ", "miss%"});
        t.setPrecision(3);
        for (const std::string &w : result.workloads) {
            const auto front = result.frontier(w);
            const core::DesignPointSummary *best = nullptr;
            for (const core::DesignPointSummary *p : front) {
                if (!best || p->energyPerAccess < best->energyPerAccess)
                    best = p;
            }
            if (!best)
                continue;
            std::ostringstream cfg;
            cfg << (best->sizeBytes >> 10) << "K/" << best->ways << "w/"
                << best->blockBytes << "B";
            t.addRow({w, static_cast<std::int64_t>(front.size()),
                      cfg.str(), mem::toString(best->repl), best->scheme,
                      best->minVdd, best->energyPerAccess * 1e12,
                      best->missRate * 100.0});
        }
        t.print(std::cout);

        std::cout << "\nexplore: " << result.configRunsExecuted
                  << " config-runs (" << result.cellsSkipped
                  << " cells skipped) in " << result.wallSeconds
                  << " s = " << result.configRunsPerSec
                  << " config-runs/s; stream-cache hit rate "
                  << 100.0 * result.streamCacheHitRate << "%\n";
    }
    // Flush the kind:"explore" record now so the table serialization
    // above is attributed to this run's phase block.
    result.emitBenchRecord();

    if (!spec.checkpointDir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(spec.checkpointDir, ec);
    }
    return 0;
}
