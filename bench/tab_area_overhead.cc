/**
 * @file
 * §5.4 — area overhead of the Set-Buffer and Tag-Buffer.
 *
 * Paper: for the 64 KB / 4-way / 32 B baseline the Set-Buffer is one
 * cache set (128 B) and adds less than 0.2 % to the cache area; the
 * Tag-Buffer needs fewer than 150 bits with 48-bit physical addresses.
 */

#include <iomanip>
#include <iostream>

#include "core/tag_buffer.hh"
#include "mem/cache.hh"
#include "sram/energy.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;

    stats::Table t("Area overhead of the proposed buffers (Section 5.4)");
    t.setHeader({"cache", "Set-Buffer bytes", "Set-Buffer overhead %",
                 "Tag-Buffer bits"});

    const mem::CacheConfig shapes[] = {
        {64 * 1024, 4, 32},  // the paper's worked example
        {32 * 1024, 4, 32},
        {32 * 1024, 4, 64},
        {128 * 1024, 4, 32},
        {64 * 1024, 8, 32},
    };

    for (const auto &cache : shapes) {
        const mem::AddrLayout layout(cache.blockBytes, cache.numSets());
        const sram::ArrayGeometry geom{cache.numSets(),
                                       cache.setBytes(), 4, false};
        const sram::EnergyModel model(geom);

        const std::uint32_t tag_bits = sram::EnergyModel::tagBufferBits(
            layout.setBits(), layout.tagBits(), cache.ways);

        t.addRow({cache.toString(),
                  static_cast<std::int64_t>(cache.setBytes()),
                  100.0 * model.setBufferOverheadFraction(),
                  static_cast<std::int64_t>(tag_bits)});
    }
    t.setPrecision(3);
    t.print(std::cout);

    std::cout << "\nPaper reference (64KB/4w/32B): Set-Buffer = one "
                 "128 B set, < 0.2 % of the cache; Tag-Buffer < 150 "
                 "bits at 48-bit physical addresses.\n";

    // The comparator/mux costs the paper mentions qualitatively.
    const sram::EnergyModel base(
        sram::ArrayGeometry{512, 128, 4, false});
    std::cout << "\nPer-operation energies (cacti-lite, 45 nm-class "
                 "constants):\n"
              << std::scientific << std::setprecision(3)
              << "  row read        " << base.rowReadEnergy() << " J\n"
              << "  row write       " << base.rowWriteEnergy() << " J\n"
              << "  Set-Buffer r/w  " << base.setBufferReadEnergy(8)
              << " / " << base.setBufferWriteEnergy(8) << " J (8 B)\n"
              << "  tag compare     " << base.tagCompareEnergy(34, 4)
              << " J\n";
    return 0;
}
