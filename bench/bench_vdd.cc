/**
 * @file
 * Voltage scaling — per-scheme min-operational-Vdd and energy/EDP
 * curves (DESIGN.md §10).
 *
 * The paper's power argument in one figure: the 6T baseline's read
 * stability collapses first, capping its minimum supply, while the 8T
 * schemes keep scaling; among the 8T schemes WG and WG+RB recoup the
 * RMW energy tax at every operating point, so the low-voltage 8T cache
 * comes out ahead on both axes. Each grid voltage runs every scheme on
 * the byte-identical stream with the voltage model attached; the
 * operational verdict comes from a Monte-Carlo SEC-DED fault map per
 * (cell type, Vdd).
 */

#include <iostream>
#include <sstream>

#include "bench/common.hh"
#include "core/vdd_sweep.hh"
#include "obs/prof.hh"
#include "sram/cell.hh"
#include "stats/table.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    core::VddSweepSpec spec; // 64 KB / 4-way / 32 B; default grid
    const trace::StreamParams profile = trace::specProfile("gcc");
    spec.makeGenerator =
        [profile]() -> std::unique_ptr<trace::AccessGenerator> {
        return std::make_unique<trace::MarkovStream>(profile);
    };
    spec.streamKey = trace::streamSignature(profile);

    const core::VddSweepResult result =
        core::runVddSweep(spec, bench::runConfig());

    // The bench record is deferred until the result is destroyed, so
    // the table serialization below lands in its phase block.
    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);
    stats::Table t("Voltage sweep: energy per access (pJ; * = not "
                   "operational), " + result.workload + " on 64KB/4w/32B");
    t.setHeader({"vdd", "6T pJ", "RMW pJ", "WG pJ", "WG+RB pJ",
                 "WG+RB EDP (pJ*ns)"});
    t.setPrecision(3);
    const core::VddCurve &wgrb =
        *result.curve(WriteScheme::WriteGroupingReadBypass);
    for (std::size_t gi = 0; gi < result.grid.size(); ++gi) {
        std::vector<stats::Cell> row{result.grid[gi]};
        for (const core::VddCurve &c : result.curves) {
            std::ostringstream cell;
            cell.precision(3);
            cell << std::fixed
                 << c.points[gi].energyPerAccess * 1e12;
            if (!c.points[gi].operational)
                cell << '*';
            row.emplace_back(cell.str());
        }
        row.emplace_back(wgrb.points[gi].edpPerAccess * 1e21);
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nmin operational Vdd (post-ECC word failure rate <= "
              << result.failureThreshold << "):";
    for (const core::VddCurve &c : result.curves) {
        std::cout << "  " << c.scheme << " (" << sram::toString(c.cell)
                  << ") " << c.minVdd << " V";
    }
    std::cout << "\n";

    // The two headline claims, checked over the whole grid.
    const core::VddCurve *sixt = result.curve(WriteScheme::SixTDirect);
    const core::VddCurve *rmw = result.curve(WriteScheme::Rmw);
    const core::VddCurve *wgrb2 =
        result.curve(WriteScheme::WriteGroupingReadBypass);
    bool dominates = true;
    for (std::size_t gi = 0; gi < result.grid.size(); ++gi) {
        if (wgrb2->points[gi].energyPerAccess >=
            rmw->points[gi].energyPerAccess)
            dominates = false;
    }
    std::cout << "8T min-Vdd below 6T: "
              << (rmw->minVdd < sixt->minVdd ? "yes" : "NO")
              << "; WG+RB below RMW energy at every Vdd: "
              << (dominates ? "yes" : "NO") << "\n";

    std::cout << "\nPaper reference: the decoupled 8T read stack keeps "
                 "read SNM equal to hold SNM, so the 8T schemes stay "
                 "operational several grid steps below the 6T baseline; "
                 "write grouping plus read bypass recoups the RMW tax, "
                 "making the low-voltage 8T cache cheaper than 8T-RMW "
                 "at every supply level.\n";
    return 0;
}
