/**
 * @file
 * Trace workflow: record a workload to a trace file once, then replay
 * it through different cache configurations — the decoupled
 * methodology a performance team would actually use (generate traces
 * on one machine, sweep configurations on another).
 *
 *   ./build/examples/trace_replay [trace_path]
 */

#include <filesystem>
#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_io.hh"

int
main(int argc, char **argv)
{
    using namespace c8t;
    using core::WriteScheme;

    const std::string path =
        argc > 1 ? argv[1]
                 : (std::filesystem::temp_directory_path() /
                    "c8t_example.trc")
                       .string();
    constexpr std::uint64_t accesses = 400'000;

    // --- Step 1: record -------------------------------------------------
    {
        trace::MarkovStream gen(trace::specProfile("lbm"));
        trace::TraceWriter writer(path);
        trace::MemAccess a;
        for (std::uint64_t i = 0; i < accesses; ++i) {
            gen.next(a);
            writer.write(a);
        }
        writer.finish();
        std::cout << "recorded " << writer.count() << " accesses of '"
                  << gen.name() << "' to " << path << "\n\n";
    }

    // --- Step 2: replay through a configuration sweep --------------------
    stats::Table t("Replaying one trace across cache shapes "
                   "(WG+RB reduction vs RMW, %)");
    t.setHeader({"cache", "RMW accesses", "WG+RB accesses",
                 "reduction %"});

    const mem::CacheConfig shapes[] = {
        {32 * 1024, 4, 32},
        {64 * 1024, 4, 32},
        {64 * 1024, 4, 64},
        {128 * 1024, 8, 32},
    };

    for (const auto &cache : shapes) {
        trace::TraceReader reader(path);
        std::vector<core::ControllerConfig> cfgs(2);
        cfgs[0].cache = cache;
        cfgs[0].scheme = WriteScheme::Rmw;
        cfgs[1].cache = cache;
        cfgs[1].scheme = WriteScheme::WriteGroupingReadBypass;

        core::MultiSchemeRunner runner(cfgs);
        const auto res = runner.run(reader, {accesses / 10, accesses});

        t.addRow({cache.toString(),
                  static_cast<std::int64_t>(res[0].demandAccesses),
                  static_cast<std::int64_t>(res[1].demandAccesses),
                  100.0 * (1.0 - static_cast<double>(
                                     res[1].demandAccesses) /
                                     res[0].demandAccesses)});
    }
    t.print(std::cout);

    std::cout << "\nThe trace file makes every row byte-identical in "
                 "its input: differences are purely the cache shape.\n";

    std::error_code ec;
    if (argc <= 1)
        std::filesystem::remove(path, ec);
    return 0;
}
