/**
 * @file
 * Quickstart: the public API in ~60 lines.
 *
 * Builds an L1 data cache with the paper's WG+RB write scheme, runs a
 * small synthetic workload against it and an RMW baseline, and prints
 * the headline numbers (array accesses, grouping statistics, energy).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/controller.hh"
#include "core/simulator.hh"
#include "trace/kernels.hh"

int
main()
{
    using namespace c8t;

    // 1. Describe the cache: the paper's baseline is the default
    //    (64 KB, 4-way, 32 B blocks, LRU).
    mem::CacheConfig cache;

    // 2. Pick the write schemes to compare.
    std::vector<core::ControllerConfig> configs(2);
    configs[0].cache = cache;
    configs[0].scheme = core::WriteScheme::Rmw;
    configs[1].cache = cache;
    configs[1].scheme = core::WriteScheme::WriteGroupingReadBypass;

    // 3. Pick a workload. HashUpdateKernel models a histogram loop:
    //    load bucket, store bucket, 30 % of the stores silent, with a
    //    hot head (skewed key distribution) that produces the set
    //    reuse Write Grouping feeds on.
    trace::HashUpdateKernel workload(/*buckets=*/512,
                                     /*updates=*/500'000,
                                     /*silent_frac=*/0.3,
                                     /*skew=*/4.0);

    // 4. Run both controllers over the identical stream.
    core::MultiSchemeRunner runner(configs);
    const auto results = runner.run(workload, {50'000, 800'000});

    // 5. Read out the numbers.
    const auto &rmw = results[0];
    const auto &wgrb = results[1];

    std::cout << "workload: " << rmw.workload << " ("
              << rmw.requests << " accesses, "
              << 100.0 * rmw.misses / rmw.requests << "% miss rate)\n\n";

    std::cout << "RMW   : " << rmw.demandAccesses
              << " array accesses, " << rmw.dynamicEnergy * 1e6
              << " uJ\n";
    std::cout << "WG+RB : " << wgrb.demandAccesses
              << " array accesses, " << wgrb.dynamicEnergy * 1e6
              << " uJ\n\n";

    const double reduction =
        100.0 * (1.0 - static_cast<double>(wgrb.demandAccesses) /
                           rmw.demandAccesses);
    std::cout << "access reduction : " << reduction << " %\n"
              << "grouped writes   : " << wgrb.groupedWrites << "\n"
              << "bypassed reads   : " << wgrb.bypassedReads << "\n"
              << "silent stores caught: " << wgrb.silentWritesDetected
              << "\n";
    return 0;
}
