/**
 * @file
 * Energy/voltage exploration: the DVFS story that motivates the paper.
 *
 * Walks supply voltage down from nominal, showing (a) where 6T and 8T
 * cells stop working (Vmin), and (b) what the cache's dynamic energy
 * per 1M-access workload looks like under RMW vs WG+RB at each
 * operating point. The punchline is the paper's: 8T lets you scale
 * voltage, RMW taxes every write for it, and WG+RB removes most of
 * that tax.
 *
 *   ./build/examples/energy_explorer
 */

#include <iostream>

#include "core/simulator.hh"
#include "sram/cell.hh"
#include "stats/table.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

int
main()
{
    using namespace c8t;
    using core::WriteScheme;

    constexpr double pfail_target = 1e-6;
    const double vmin6 = sram::vmin(sram::CellType::SixT, pfail_target);
    const double vmin8 =
        sram::vmin(sram::CellType::EightT, pfail_target);

    std::cout << "Vmin @ per-cell Pfail " << pfail_target
              << ":  6T = " << vmin6 << " V,  8T = " << vmin8
              << " V  (8T headroom " << 1000.0 * (vmin6 - vmin8)
              << " mV)\n\n";

    stats::Table t("Dynamic energy of 1M gcc-like accesses vs supply "
                   "voltage (64KB/4w/32B)");
    t.setHeader({"Vdd (V)", "6T ok?", "8T ok?", "RMW (uJ)",
                 "WG+RB (uJ)", "WG+RB saving %"});
    t.setPrecision(3);

    constexpr std::uint64_t accesses = 200'000;

    for (double v = 1.0; v >= 0.55; v -= 0.05) {
        trace::MarkovStream gen(trace::specProfile("gcc"));

        std::vector<core::ControllerConfig> cfgs(2);
        for (auto &c : cfgs)
            c.tech.vdd = v;
        cfgs[0].scheme = WriteScheme::Rmw;
        cfgs[1].scheme = WriteScheme::WriteGroupingReadBypass;

        core::MultiSchemeRunner runner(cfgs);
        const auto res = runner.run(gen, {accesses / 10, accesses});

        const double scale = 1'000'000.0 / accesses; // per 1M accesses
        const double e_rmw = res[0].dynamicEnergy * 1e6 * scale;
        const double e_rb = res[1].dynamicEnergy * 1e6 * scale;

        t.addRow({v, std::string(v >= vmin6 ? "yes" : "NO"),
                  std::string(v >= vmin8 ? "yes" : "NO"), e_rmw, e_rb,
                  100.0 * (1.0 - e_rb / e_rmw)});
    }
    t.print(std::cout);

    std::cout
        << "\nReading: below the 6T Vmin only the 8T array keeps "
           "working — that is why the column-selection problem must "
           "be solved rather than avoided by staying with 6T. Energy "
           "scales with Vdd^2; WG+RB's relative saving holds at every "
           "operating point because it removes array accesses, not "
           "volts.\n";
    return 0;
}
