/**
 * @file
 * SPEC sweep: reproduce the paper's whole evaluation in one program.
 *
 * Runs every calibrated SPEC CPU2006 profile through all six write
 * schemes on the baseline cache and prints a compact comparison,
 * including the paper's headline averages. Accepts an optional access
 * count argument:
 *
 *   ./build/examples/spec_sweep [accesses_per_benchmark]
 */

#include <cstdlib>
#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace c8t;
    using core::WriteScheme;

    std::uint64_t accesses = 300'000;
    if (argc > 1)
        accesses = std::strtoull(argv[1], nullptr, 10);

    const std::vector<WriteScheme> schemes = {
        WriteScheme::SixTDirect,    WriteScheme::Rmw,
        WriteScheme::LocalRmw,      WriteScheme::WordGranular,
        WriteScheme::WriteGrouping, WriteScheme::WriteGroupingReadBypass,
    };

    stats::Table t("Demand array accesses, normalised to RMW = 1.000 "
                   "(64KB/4w/32B/LRU, " + std::to_string(accesses) +
                   " accesses per benchmark)");
    t.setHeader({"benchmark", "6T", "RMW", "LocalRMW", "WordGran",
                 "WG", "WG+RB", "grouped %", "bypassed %"});
    t.setPrecision(3);

    double wg_sum = 0, rb_sum = 0;
    for (const auto &p : trace::specProfiles()) {
        trace::MarkovStream gen(p);
        std::vector<core::ControllerConfig> cfgs;
        for (WriteScheme s : schemes) {
            core::ControllerConfig c;
            c.scheme = s;
            cfgs.push_back(c);
        }
        core::MultiSchemeRunner runner(std::move(cfgs));
        const auto res = runner.run(gen, {accesses / 10, accesses});

        const double rmw = static_cast<double>(res[1].demandAccesses);
        std::vector<stats::Cell> row{p.name};
        for (const auto &r : res)
            row.push_back(r.demandAccesses / rmw);
        row.push_back(100.0 * res[4].groupedWrites /
                      std::max<std::uint64_t>(res[4].writes, 1));
        row.push_back(100.0 * res[5].bypassedReads /
                      std::max<std::uint64_t>(res[5].reads, 1));
        t.addRow(std::move(row));

        wg_sum += 100.0 * (1.0 - res[4].demandAccesses / rmw);
        rb_sum += 100.0 * (1.0 - res[5].demandAccesses / rmw);
    }
    t.print(std::cout);

    const double n = trace::specProfiles().size();
    std::cout << "\nAverage reduction vs RMW:  WG " << wg_sum / n
              << " %   WG+RB " << rb_sum / n
              << " %   (paper: 27 % and 33 %)\n";
    return 0;
}
